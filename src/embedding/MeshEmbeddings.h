//===- embedding/MeshEmbeddings.h - Corollaries 6-7 meshes -----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mesh embeddings of Section 5:
///
/// 1. SJT mesh: the (k-1)! x k mesh embeds one-to-one into the k-TN with
///    dilation 1 (the [12] result behind Corollary 6). Row r is the r-th
///    permutation of the k-1 small symbols in Steinhaus-Johnson-Trotter
///    order; column c inserts the largest symbol at position c. Horizontal
///    neighbors transpose the largest symbol with an adjacent one; vertical
///    neighbors apply the SJT adjacent transposition of the row step --
///    both single pair transpositions, i.e. TN links.
///
/// 2. Lehmer mesh: the 2 x 3 x ... x k mixed-radix mesh embeds one-to-one
///    into the k-star with dilation 3 (the [11] result behind Corollary 7):
///    coordinates are Lehmer digits; a +-1 digit step transposes the symbol
///    at that digit's position with a symbol further right, which is one
///    star hop when the position is 1 and a 3-hop conjugate otherwise.
///
/// Composition with the TN -> SCG and star -> SCG templates then yields all
/// the O(1)-dilation mesh embeddings of Corollaries 6 and 7.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_MESHEMBEDDINGS_H
#define SCG_EMBEDDING_MESHEMBEDDINGS_H

#include "embedding/Embedding.h"

namespace scg {

/// Shape of the SJT mesh for k symbols: (k-1)! rows, k columns.
struct SjtMeshShape {
  uint64_t Rows;
  unsigned Cols;
};
SjtMeshShape sjtMeshShape(unsigned K);

/// Builds the (k-1)! x k mesh guest graph for \p K symbols (node id =
/// row * k + col) together with its dilation-1 embedding into \p Tn, which
/// must be the transposition network on \p K symbols and must outlive the
/// embedding.
Embedding embedSjtMeshIntoTn(const SuperCayleyGraph &Tn);

/// Builds the dilation-3 embedding of the 2 x 3 x ... x k mesh (built by
/// lehmerMeshDims/mixedRadixMesh) into \p Star, the star graph on k
/// symbols.
Embedding embedLehmerMeshIntoStar(const SuperCayleyGraph &Star);

/// The guest extents of the Lehmer mesh on \p K symbols: {2, 3, ..., k}.
std::vector<unsigned> lehmerMeshDims(unsigned K);

} // namespace scg

#endif // SCG_EMBEDDING_MESHEMBEDDINGS_H
