//===- embedding/CycleEmbedding.cpp - Rings via SJT Hamiltonicity --------===//

#include "embedding/CycleEmbedding.h"

#include "emulation/SdcEmulation.h"
#include "perm/SJT.h"
#include "routing/StarRouter.h"

#include <cassert>

using namespace scg;

Graph scg::ringGraph(uint64_t NumNodes) {
  assert(NumNodes >= 3 && NumNodes <= (uint64_t(1) << 31) &&
         "ring size out of range");
  Graph G(static_cast<NodeId>(NumNodes));
  for (NodeId I = 0; I != NumNodes; ++I)
    G.addUndirectedEdge(I, (I + 1) % NumNodes);
  return G;
}

/// Shared node map: S_k in SJT order; consecutive labels (cyclically)
/// differ by one pair transposition.
static std::vector<Permutation> sjtCycle(unsigned K) {
  std::vector<Permutation> Order = sjtOrder(K);
  // Closing edge: the last SJT permutation differs from the identity by
  // one transposition (checked here rather than assumed).
  Permutation Closing = Order.back().inverse().compose(Order.front());
  assert(Closing.numDisplaced() == 2 && "SJT order does not close a cycle");
  return Order;
}

Embedding scg::embedRingIntoTn(const SuperCayleyGraph &Tn) {
  assert(Tn.kind() == NetworkKind::Transposition && "host must be a TN");
  unsigned K = Tn.numSymbols();
  Embedding E;
  E.Host = &Tn;
  E.NodeMap = sjtCycle(K);
  const SuperCayleyGraph *Host = &Tn;
  std::vector<Permutation> Map = E.NodeMap;
  E.Route = [Host, Map = std::move(Map)](NodeId U, NodeId V) {
    std::optional<GenIndex> Link = linkBetween(*Host, Map[U], Map[V]);
    assert(Link && "ring neighbors are not TN-adjacent");
    GeneratorPath Path;
    Path.append(*Link);
    return Path;
  };
  return E;
}

Embedding scg::embedRingIntoStar(const SuperCayleyGraph &Star) {
  assert(Star.kind() == NetworkKind::Star && "host must be a star graph");
  unsigned K = Star.numSymbols();
  Embedding E;
  E.Host = &Star;
  E.NodeMap = sjtCycle(K);
  const SuperCayleyGraph *Host = &Star;
  std::vector<Permutation> Map = E.NodeMap;
  E.Route = [Host, Map = std::move(Map)](NodeId U, NodeId V) {
    GeneratorPath Path;
    for (unsigned Dim : starRouteDimensions(Map[U], Map[V]))
      Path.append(Dim - 2); // star generators are T_2..T_k in order.
    return Path;
  };
  return E;
}
