//===- embedding/StarEmbeddings.h - Star -> SCG embeddings -----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The star-graph embeddings of Section 3: the (ln+1)-star maps onto a
/// same-sized super Cayley graph with the identity node map, each star
/// link T_j routed along its emulation path. Section 3's quoted numbers:
///
///   dilation   2 (IS), 3 (MS/complete-RS), 4 (MIS/complete-RIS)
///   congestion 1 (IS), max(2n, l) (the four box classes)
///   per-dimension congestion: 2 for j > n+1, 1 otherwise
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_STAREMBEDDINGS_H
#define SCG_EMBEDDING_STAREMBEDDINGS_H

#include "embedding/PathTemplates.h"

namespace scg {

/// Builds the identity-map embedding of \p Star (a star graph on the same
/// symbols) into \p Host. \p Star must outlive the returned embedding.
Embedding embedStarInto(const SuperCayleyGraph &Star,
                        const SuperCayleyGraph &Host);

/// Congestion of the embedding restricted to the star links of dimension
/// \p Dim only (Section 3's per-dimension claim). Exact, by routing all k!
/// dimension-\p Dim links; requires k <= 9.
uint64_t starDimensionCongestion(const SuperCayleyGraph &Host, unsigned Dim);

/// Paper-claimed total congestion of the star embedding into \p Host.
uint64_t paperStarCongestionBound(const SuperCayleyGraph &Host);

/// Paper-claimed dilation (same as the SDC slowdown bound).
unsigned paperStarDilationBound(const SuperCayleyGraph &Host);

} // namespace scg

#endif // SCG_EMBEDDING_STAREMBEDDINGS_H
