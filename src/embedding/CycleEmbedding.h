//===- embedding/CycleEmbedding.h - Rings via SJT Hamiltonicity -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ring (cycle) embeddings, the remaining guest family of [11] behind
/// Corollary 6's mesh machinery. The Steinhaus-Johnson-Trotter order is a
/// Hamiltonian path in the bubble-sort graph whose endpoints (identity and
/// the single swap of the two smallest symbols) differ by one adjacent
/// transposition, so S_k in SJT order is a Hamiltonian CYCLE of the
/// transposition network: the k!-node ring embeds into the k-TN with
/// load 1, expansion 1, dilation 1. Composing with the Theorem 6/7
/// templates gives O(1)-dilation rings in every super Cayley graph class;
/// composing each adjacent transposition with its 3-hop star conjugate
/// gives the dilation-3 ring in the star graph of [11].
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_CYCLEEMBEDDING_H
#define SCG_EMBEDDING_CYCLEEMBEDDING_H

#include "embedding/Embedding.h"

namespace scg {

/// Builds the k!-node ring guest graph (node i adjacent to i+-1 mod k!).
Graph ringGraph(uint64_t NumNodes);

/// Dilation-1 embedding of the k!-node ring into \p Tn (the transposition
/// network on k symbols) along the SJT Hamiltonian cycle.
Embedding embedRingIntoTn(const SuperCayleyGraph &Tn);

/// Dilation-3 embedding of the k!-node ring into \p Star along the same
/// cycle, each adjacent transposition expanded to T_i T_j T_i.
Embedding embedRingIntoStar(const SuperCayleyGraph &Star);

} // namespace scg

#endif // SCG_EMBEDDING_CYCLEEMBEDDING_H
