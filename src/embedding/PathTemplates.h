//===- embedding/PathTemplates.h - Generator path templates ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A path-template map from a guest Cayley graph to a host super Cayley
/// graph on the same symbol set: one host word per guest generator, each
/// verified to realize the guest generator's action. Because Cayley-graph
/// edges are translation-invariant, one template per generator routes every
/// guest edge, and embeddings compose mechanically: a guest path expands
/// hop by hop. This is how Corollaries 4-7 turn an embedding into the star
/// graph into embeddings into all ten super Cayley graph classes.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_PATHTEMPLATES_H
#define SCG_EMBEDDING_PATHTEMPLATES_H

#include "embedding/Embedding.h"

namespace scg {

/// Per-guest-generator host words (Cayley-to-Cayley edge routing).
class PathTemplateMap {
public:
  /// Builds templates for every generator of \p Guest into \p Host; both
  /// must act on the same number of symbols. Every template's net effect is
  /// asserted to equal the guest generator's action. Supported guests: the
  /// star graph and the transposition network; supported hosts: everything
  /// supportsStarEmulation() accepts.
  static PathTemplateMap create(const SuperCayleyGraph &Guest,
                                const SuperCayleyGraph &Host);

  const SuperCayleyGraph &guest() const { return *Guest; }
  const SuperCayleyGraph &host() const { return *Host; }

  /// Host word for guest generator \p G.
  const GeneratorPath &operator[](GenIndex G) const {
    assert(G < Templates.size() && "guest generator out of range");
    return Templates[G];
  }

  /// Expands a guest word hop by hop into a host word.
  GeneratorPath expand(const GeneratorPath &GuestPath) const;

  /// Longest template (the dilation of the identity-map embedding).
  unsigned maxTemplateLength() const;

private:
  PathTemplateMap(const SuperCayleyGraph &Guest, const SuperCayleyGraph &Host)
      : Guest(&Guest), Host(&Host) {}

  const SuperCayleyGraph *Guest;
  const SuperCayleyGraph *Host;
  std::vector<GeneratorPath> Templates; ///< indexed by guest GenIndex.
};

/// The identity-node-map embedding of \p Guest into \p Host induced by a
/// template map (used by the star->SCG and TN->SCG theorems). \p GuestView
/// must be the explicit Lehmer-ranked graph of \p Templates.guest().
Embedding templateEmbedding(const PathTemplateMap &Templates);

/// Rebases an embedding into the template map's guest network onto its
/// host: same node map, routes expanded through the templates.
Embedding composeEmbedding(const Embedding &Inner,
                           const PathTemplateMap &Templates);

} // namespace scg

#endif // SCG_EMBEDDING_PATHTEMPLATES_H
