//===- embedding/HypercubeEmbedding.cpp - Corollary 5 --------------------===//

#include "embedding/HypercubeEmbedding.h"

#include "core/Generator.h"

#include <cassert>

using namespace scg;

unsigned scg::hypercubeDimensionFor(unsigned K) {
  assert(K >= 3 && "need k >= 3 for one disjoint pair beyond position 1");
  return (K - 1) / 2;
}

Embedding scg::embedHypercubeIntoStar(const SuperCayleyGraph &Star) {
  assert(Star.kind() == NetworkKind::Star && "host must be a star graph");
  unsigned K = Star.numSymbols();
  unsigned D = hypercubeDimensionFor(K);
  assert(D < 31 && "hypercube too large");

  // Bit m toggles the pair transposition of 1-based positions
  // (2m+2, 2m+3); all pairs avoid position 1 and are disjoint.
  std::vector<Permutation> BitAction;
  for (unsigned M = 0; M != D; ++M)
    BitAction.push_back(makePairTransposition(K, 2 * M + 2, 2 * M + 3).Sigma);

  Embedding E;
  E.Host = &Star;
  uint64_t N = uint64_t(1) << D;
  E.NodeMap.reserve(N);
  for (uint64_t Bits = 0; Bits != N; ++Bits) {
    Permutation P = Permutation::identity(K);
    for (unsigned M = 0; M != D; ++M)
      if (Bits & (uint64_t(1) << M))
        P = P.compose(BitAction[M]);
    E.NodeMap.push_back(std::move(P));
  }

  const SuperCayleyGraph *Host = &Star;
  E.Route = [Host, D](NodeId U, NodeId V) {
    uint64_t Diff = uint64_t(U) ^ uint64_t(V);
    assert(Diff && !(Diff & (Diff - 1)) && "nodes differ in one bit");
    unsigned M = 0;
    while (!(Diff & (uint64_t(1) << M)))
      ++M;
    assert(M < D && "bit out of range");
    (void)D;
    // T_{i,j} = T_i T_j T_i with i = 2m+2, j = 2m+3; the conjugation is
    // its own inverse, so the same word serves both edge directions.
    unsigned I = 2 * M + 2, J = 2 * M + 3;
    auto Gen = [Host](unsigned Dim) {
      std::optional<GenIndex> G = Host->generators().findByAction(
          makeTransposition(Host->numSymbols(), Dim).Sigma);
      assert(G && "star generator missing");
      return *G;
    };
    GeneratorPath Path;
    Path.append(Gen(I));
    Path.append(Gen(J));
    Path.append(Gen(I));
    return Path;
  };
  return E;
}
