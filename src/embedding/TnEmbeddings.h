//===- embedding/TnEmbeddings.h - Theorems 6-7 TN embeddings ---*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Embeddings of the k-dimensional transposition network into super Cayley
/// graphs (Theorems 6 and 7): each TN generator T_{i,j} is realized by a
/// host word from the six-case table of Theorem 6,
///
///   T_j                                               i = 1, j1 = 0
///   B_{j1+1} T_{j0+2} B_{j1+1}^-1                     i = 1, j1 > 0
///   T_i T_j T_i                                       i1 = j1 = 0
///   T_i B_{j1+1} T_{j0+2} B_{j1+1}^-1 T_i             i1 = 0, j1 > 0
///   B_{i1+1} T_{i0+2} T_{j0+2} T_{i0+2} B_{i1+1}^-1   i1 = j1 > 0
///   B_{i1+1} T_{i0+2} B_{j1+1} T_{j0+2} B_{j1+1}^-1
///       T_{i0+2} B_{i1+1}^-1                          0 < i1 != j1 > 0
///
/// with every T expanded into I I^-1 on insertion-selection nuclei
/// (Theorem 7). Dilation: 5 for l = 2, 7 for l >= 3 (MS/complete-RS), 6
/// for IS, O(1) (= 10 with this construction) for MIS/complete-RIS.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_TNEMBEDDINGS_H
#define SCG_EMBEDDING_TNEMBEDDINGS_H

#include "routing/Path.h"

namespace scg {

/// Host word realizing the pair transposition T_{i,j} (1 <= i < j <= k) in
/// \p Host (asserts supportsStarEmulation(Host)); its net effect is
/// asserted to equal the T_{i,j} action.
GeneratorPath tnPairPath(const SuperCayleyGraph &Host, unsigned I,
                         unsigned J);

/// The dilation the paper claims for embedding the k-TN into \p Host:
/// 3 into the star, 6 into IS, 5 into MS/complete-RS with l = 2, 7 with
/// l >= 3, and 10 (the constant behind "O(1)") into MIS/complete-RIS.
unsigned paperTnDilationBound(const SuperCayleyGraph &Host);

} // namespace scg

#endif // SCG_EMBEDDING_TNEMBEDDINGS_H
