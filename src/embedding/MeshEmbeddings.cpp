//===- embedding/MeshEmbeddings.cpp - Corollaries 6-7 meshes -------------===//

#include "embedding/MeshEmbeddings.h"

#include "emulation/SdcEmulation.h"
#include "networks/Classic.h"
#include "perm/Lehmer.h"
#include "perm/SJT.h"
#include "routing/StarRouter.h"

#include <cassert>

using namespace scg;

SjtMeshShape scg::sjtMeshShape(unsigned K) {
  assert(K >= 2 && "need at least two symbols");
  return {factorial(K - 1), K};
}

/// Inserts symbol K-1 into \p Small (a permutation of 0..K-2) at position
/// \p Col, producing a permutation of 0..K-1.
static Permutation insertLargest(const Permutation &Small, unsigned Col,
                                 unsigned K) {
  std::vector<uint8_t> Word;
  Word.reserve(K);
  for (unsigned P = 0; P != Small.size(); ++P) {
    if (P == Col)
      Word.push_back(static_cast<uint8_t>(K - 1));
    Word.push_back(Small[P]);
  }
  if (Col == K - 1)
    Word.push_back(static_cast<uint8_t>(K - 1));
  return Permutation::fromOneLine(std::move(Word));
}

Embedding scg::embedSjtMeshIntoTn(const SuperCayleyGraph &Tn) {
  assert(Tn.kind() == NetworkKind::Transposition && "host must be a TN");
  unsigned K = Tn.numSymbols();
  assert(K >= 2 && K <= 9 && "SJT mesh materializes k! labels");
  SjtMeshShape Shape = sjtMeshShape(K);

  Embedding E;
  E.Host = &Tn;
  E.NodeMap.reserve(Shape.Rows * Shape.Cols);
  for (const Permutation &Row : sjtOrder(K - 1))
    for (unsigned Col = 0; Col != Shape.Cols; ++Col)
      E.NodeMap.push_back(insertLargest(Row, Col, K));

  const SuperCayleyGraph *Host = &Tn;
  std::vector<Permutation> Map = E.NodeMap; // shared by the router.
  E.Route = [Host, Map = std::move(Map)](NodeId U, NodeId V) {
    std::optional<GenIndex> Link = linkBetween(*Host, Map[U], Map[V]);
    assert(Link && "SJT mesh neighbors are not TN-adjacent");
    GeneratorPath Path;
    Path.append(*Link);
    return Path;
  };
  return E;
}

std::vector<unsigned> scg::lehmerMeshDims(unsigned K) {
  std::vector<unsigned> Dims;
  for (unsigned M = 2; M <= K; ++M)
    Dims.push_back(M);
  return Dims;
}

Embedding scg::embedLehmerMeshIntoStar(const SuperCayleyGraph &Star) {
  assert(Star.kind() == NetworkKind::Star && "host must be a star graph");
  unsigned K = Star.numSymbols();
  assert(K >= 2 && K <= 9 && "Lehmer mesh materializes k! labels");
  std::vector<unsigned> Dims = lehmerMeshDims(K);

  Embedding E;
  E.Host = &Star;
  uint64_t N = factorial(K);
  E.NodeMap.reserve(N);
  for (uint64_t Id = 0; Id != N; ++Id) {
    std::vector<unsigned> Coords = mixedRadixCoords(Id, Dims);
    // Guest coordinate m has extent m+2 and feeds Lehmer digit k-m-2
    // (whose radix is k - (k-m-2) = m+2).
    std::vector<uint8_t> Code(K, 0);
    for (unsigned M = 0; M + 2 <= K; ++M)
      Code[K - M - 2] = static_cast<uint8_t>(Coords[M]);
    E.NodeMap.push_back(fromLehmerCode(Code));
  }

  const SuperCayleyGraph *Host = &Star;
  std::vector<Permutation> Map = E.NodeMap;
  E.Route = [Host, Map = std::move(Map)](NodeId U, NodeId V) {
    GeneratorPath Path;
    for (unsigned Dim : starRouteDimensions(Map[U], Map[V])) {
      std::optional<GenIndex> G = Host->generators().findByAction(
          makeTransposition(Host->numSymbols(), Dim).Sigma);
      assert(G && "star generator missing");
      Path.append(*G);
    }
    return Path;
  };
  return E;
}
