//===- embedding/TnEmbeddings.cpp - Theorems 6-7 TN embeddings -----------===//

#include "embedding/TnEmbeddings.h"

#include "emulation/DimensionMap.h"
#include "emulation/SdcEmulation.h"

#include <cassert>

using namespace scg;

/// Appends the super word that hands front-box duty from box \p From to
/// box \p To during the case-6 sequence. On swap-based hosts this is
/// always S_{SwapSlot} (box a is parked at box b's home slot between the
/// two shuttles, so both legs swap against slot b). On rotation-based
/// hosts the shuttle is the relative rotation R^{From-To}.
static void appendBoxShuttle(const SuperCayleyGraph &Host, unsigned From,
                             unsigned To, unsigned SwapSlot,
                             GeneratorPath &Path) {
  unsigned K = Host.numSymbols();
  unsigned N = Host.ballsPerBox();
  unsigned L = Host.numBoxes();
  switch (Host.kind()) {
  case NetworkKind::MacroStar:
  case NetworkKind::MacroIS:
    Path.append(*Host.generators().findLink(makeSwap(K, N, SwapSlot)));
    return;
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::CompleteRotationIS:
    Path.append(*Host.generators().findLink(
        makeRotation(K, N, int(From) - int(To))));
    return;
  case NetworkKind::RotationStar:
  case NetworkKind::RotationIS: {
    int Shift = ((int(From) - int(To)) % int(L) + int(L)) % int(L);
    unsigned Forward = unsigned(Shift);
    unsigned Backward = L - Forward;
    bool UseForward = Forward <= Backward;
    unsigned Count = UseForward ? Forward : Backward;
    GenIndex Link = *Host.generators().findLink(
        makeRotation(K, N, UseForward ? 1 : -1));
    for (unsigned S = 0; S != Count; ++S)
      Path.append(Link);
    return;
  }
  default:
    assert(false && "host has no boxes to shuttle");
  }
}

GeneratorPath scg::tnPairPath(const SuperCayleyGraph &Host, unsigned I,
                              unsigned J) {
  assert(supportsStarEmulation(Host) && "unsupported host kind");
  assert(I >= 1 && I < J && J <= Host.numSymbols() && "bad pair (i, j)");
  unsigned N = Host.ballsPerBox();
  GeneratorPath Path;

  if (I == 1) {
    // Cases 1 and 2: T_{1,j} is star dimension j.
    Path = starDimensionPath(Host, J);
  } else {
    DimensionParts Pi = decomposeDimension(I, N);
    DimensionParts Pj = decomposeDimension(J, N);
    if (Pi.J1 == 0 && Pj.J1 == 0) {
      // Case 3: both in the leftmost box (conjugation T_i T_j T_i).
      appendNucleusWord(Host, I, Path);
      appendNucleusWord(Host, J, Path);
      appendNucleusWord(Host, I, Path);
    } else if (Pi.J1 == 0) {
      // Case 4: i in the leftmost box, j elsewhere.
      appendNucleusWord(Host, I, Path);
      appendBringBoxWord(Host, Pj.J1 + 1, /*Inverse=*/false, Path);
      appendNucleusWord(Host, Pj.J0 + 2, Path);
      appendBringBoxWord(Host, Pj.J1 + 1, /*Inverse=*/true, Path);
      appendNucleusWord(Host, I, Path);
    } else if (Pi.J1 == Pj.J1) {
      // Case 5: both in the same non-leftmost box.
      appendBringBoxWord(Host, Pi.J1 + 1, /*Inverse=*/false, Path);
      appendNucleusWord(Host, Pi.J0 + 2, Path);
      appendNucleusWord(Host, Pj.J0 + 2, Path);
      appendNucleusWord(Host, Pi.J0 + 2, Path);
      appendBringBoxWord(Host, Pi.J1 + 1, /*Inverse=*/true, Path);
    } else {
      // Case 6: distinct non-leftmost boxes a and b. On swap-based hosts
      // the paper's B_{j1+1} literally works mid-sequence (box b is still
      // at its home slot while box a is out front). On rotation-based
      // hosts every rotation shifts all boxes, so the middle moves must be
      // the *relative* rotations R^{a-b} and R^{b-a}.
      unsigned A = Pi.J1 + 1, B = Pj.J1 + 1;
      appendBringBoxWord(Host, A, /*Inverse=*/false, Path);
      appendNucleusWord(Host, Pi.J0 + 2, Path);
      appendBoxShuttle(Host, A, B, B, Path);
      appendNucleusWord(Host, Pj.J0 + 2, Path);
      appendBoxShuttle(Host, B, A, B, Path);
      appendNucleusWord(Host, Pi.J0 + 2, Path);
      appendBringBoxWord(Host, A, /*Inverse=*/true, Path);
    }
  }

  assert(Path.netEffect(Host) ==
             makePairTransposition(Host.numSymbols(), I, J).Sigma &&
         "TN template does not realize T_{i,j}");
  return Path;
}

unsigned scg::paperTnDilationBound(const SuperCayleyGraph &Host) {
  switch (Host.kind()) {
  case NetworkKind::Star:
    return 3;
  case NetworkKind::Transposition:
    return 1;
  case NetworkKind::InsertionSelection:
    return 6; // Theorem 7.
  case NetworkKind::MacroStar:
  case NetworkKind::CompleteRotationStar:
    return Host.numBoxes() == 2 ? 5 : 7; // Theorem 6.
  case NetworkKind::MacroIS:
  case NetworkKind::CompleteRotationIS:
    // Theorem 7 states O(1); case 6 with every nucleus expanded is the
    // worst case of this construction: 4 box moves + 3 two-hop nuclei.
    return 10;
  default:
    assert(false && "the paper states no TN dilation for this kind");
    return 0;
  }
}
