//===- embedding/TreeEmbedding.h - Corollary 4 tree embedder ---*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Complete-binary-tree -> star embeddings behind Corollary 4. The paper
/// cites the height-(2k-5) dilation-1 construction of [5]; as documented in
/// DESIGN.md (substitution 2), this library searches for the embedding
/// instead: a budgeted backtracking embedder places the tree depth-first,
/// each node within the dilation budget of its parent's image, over the
/// explicit star graph. Corollary 4's content -- the composed dilations
/// 2/3/4 on IS / MS / MIS hosts -- is then verified exactly by composing
/// whatever base dilation the search achieves with the star -> SCG
/// templates.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_TREEEMBEDDING_H
#define SCG_EMBEDDING_TREEEMBEDDING_H

#include "embedding/Embedding.h"
#include "networks/Explicit.h"

#include <optional>

namespace scg {

/// Result of a tree-embedding search.
struct TreeEmbeddingResult {
  Embedding E;           ///< valid only when Found.
  bool Found = false;
  uint64_t StepsUsed = 0; ///< backtracking steps consumed.
};

/// Searches for an embedding of the complete binary tree of height
/// \p Height into \p Star (explicit form) in which every tree edge maps to
/// a host path of length <= \p MaxDilation. Gives up after \p StepBudget
/// backtracking steps. The returned embedding's guest node ids follow the
/// heap order of completeBinaryTree().
TreeEmbeddingResult embedTreeIntoStar(const ExplicitScg &Star,
                                      unsigned Height, unsigned MaxDilation,
                                      uint64_t StepBudget = 2'000'000);

} // namespace scg

#endif // SCG_EMBEDDING_TREEEMBEDDING_H
