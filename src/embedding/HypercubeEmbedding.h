//===- embedding/HypercubeEmbedding.h - Corollary 5 ------------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hypercube -> star embedding behind Corollary 5. The paper cites the
/// d <= k log2 k - 3k/2 construction of [14]; as documented in DESIGN.md
/// (substitution 3), this library implements the commuting-transposition
/// construction instead: bit m of a d-cube node toggles the pair
/// transposition of positions (2m+2, 2m+3), so a node maps to the product
/// of its set bits' transpositions (all disjoint, hence commuting), and a
/// hypercube edge maps to the 3-hop star word T_i T_j T_i. This gives
/// d = floor((k-1)/2), dilation 3, load 1 -- the same composition path with
/// a smaller dimension budget; Corollary 5's composed dilations are
/// verified exactly on top of it.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_HYPERCUBEEMBEDDING_H
#define SCG_EMBEDDING_HYPERCUBEEMBEDDING_H

#include "embedding/Embedding.h"

namespace scg {

/// Largest hypercube dimension this construction supports in a k-star.
unsigned hypercubeDimensionFor(unsigned K);

/// Builds the dilation-3 embedding of the hypercubeDimensionFor(k)-cube
/// into \p Star (guest node id = bit vector, as built by hypercube()).
Embedding embedHypercubeIntoStar(const SuperCayleyGraph &Star);

} // namespace scg

#endif // SCG_EMBEDDING_HYPERCUBEEMBEDDING_H
