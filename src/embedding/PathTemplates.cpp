//===- embedding/PathTemplates.cpp - Generator path templates ------------===//

#include "embedding/PathTemplates.h"

#include "embedding/TnEmbeddings.h"
#include "emulation/SdcEmulation.h"
#include "perm/Lehmer.h"

#include <cassert>

using namespace scg;

PathTemplateMap PathTemplateMap::create(const SuperCayleyGraph &Guest,
                                        const SuperCayleyGraph &Host) {
  assert(Guest.numSymbols() == Host.numSymbols() &&
         "guest and host must act on the same symbols");
  assert(supportsStarEmulation(Host) && "unsupported host kind");
  PathTemplateMap Map(Guest, Host);
  const GeneratorSet &Gens = Guest.generators();
  Map.Templates.reserve(Gens.size());
  for (GenIndex G = 0; G != Gens.size(); ++G) {
    GeneratorPath Template;
    switch (Guest.kind()) {
    case NetworkKind::Star: {
      // Guest generators were added as T_2 .. T_k in order.
      unsigned Dim = G + 2;
      assert(Gens[G].Sigma ==
                 makeTransposition(Guest.numSymbols(), Dim).Sigma &&
             "unexpected star generator order");
      Template = starDimensionPath(Host, Dim);
      break;
    }
    case NetworkKind::Transposition: {
      // Recover (i, j) from the action: the two displaced positions.
      const Permutation &Sigma = Gens[G].Sigma;
      unsigned I = 0, J = 0;
      for (unsigned P = 0; P != Sigma.size(); ++P)
        if (Sigma[P] != P) {
          if (!I)
            I = P + 1;
          else
            J = P + 1;
        }
      assert(I && J && "TN generator is not a pair transposition");
      Template = tnPairPath(Host, I, J);
      break;
    }
    default:
      assert(false && "no templates for this guest kind");
    }
    assert(Template.netEffect(Host) == Gens[G].Sigma &&
           "template does not realize the guest generator");
    Map.Templates.push_back(std::move(Template));
  }
  return Map;
}

GeneratorPath PathTemplateMap::expand(const GeneratorPath &GuestPath) const {
  GeneratorPath HostPath;
  for (GenIndex G : GuestPath.hops())
    for (GenIndex H : Templates[G].hops())
      HostPath.append(H);
  return HostPath;
}

unsigned PathTemplateMap::maxTemplateLength() const {
  unsigned Max = 0;
  for (const GeneratorPath &T : Templates)
    Max = std::max(Max, T.length());
  return Max;
}

Embedding scg::templateEmbedding(const PathTemplateMap &Templates) {
  unsigned K = Templates.guest().numSymbols();
  Embedding E;
  E.Host = &Templates.host();
  E.NodeMap = identityNodeMap(K);
  const SuperCayleyGraph *Guest = &Templates.guest();
  PathTemplateMap Map = Templates; // captured by value.
  E.Route = [Guest, Map = std::move(Map), K](NodeId U, NodeId V) {
    Permutation A = unrankPermutation(U, K);
    Permutation B = unrankPermutation(V, K);
    std::optional<GenIndex> G = Guest->generators().findByAction(
        A.inverse().compose(B));
    assert(G && "guest nodes are not adjacent");
    return Map[*G];
  };
  return E;
}

Embedding scg::composeEmbedding(const Embedding &Inner,
                                const PathTemplateMap &Templates) {
  // Structural (not pointer) identity: the factories produce generators in
  // a fixed order, so equal names imply compatible generator indices.
  assert(Inner.Host && Inner.Host->name() == Templates.guest().name() &&
         "inner embedding's host must be the template guest");
  Embedding E;
  E.Host = &Templates.host();
  E.NodeMap = Inner.NodeMap;
  auto InnerRoute = Inner.Route;
  PathTemplateMap Map = Templates;
  E.Route = [InnerRoute, Map = std::move(Map)](NodeId U, NodeId V) {
    return Map.expand(InnerRoute(U, V));
  };
  return E;
}
