//===- embedding/TreeEmbedding.cpp - Corollary 4 tree embedder -----------===//

#include "embedding/TreeEmbedding.h"

#include "routing/StarRouter.h"

#include <algorithm>
#include <cassert>

using namespace scg;

namespace {

/// Collects the distinct host nodes within \p Radius hops of \p Center
/// (excluding \p Center itself), in increasing-distance order.
std::vector<NodeId> ballAround(const ExplicitScg &Host, NodeId Center,
                               unsigned Radius) {
  std::vector<NodeId> Ball;
  std::vector<NodeId> Frontier{Center};
  // Small radii over a bounded-degree graph: a flat visited list is fine.
  std::vector<NodeId> Visited{Center};
  auto Seen = [&Visited](NodeId N) {
    return std::find(Visited.begin(), Visited.end(), N) != Visited.end();
  };
  for (unsigned Depth = 0; Depth != Radius; ++Depth) {
    std::vector<NodeId> Next;
    for (NodeId U : Frontier)
      for (GenIndex G = 0; G != Host.degree(); ++G) {
        NodeId V = Host.next(U, G);
        if (Seen(V))
          continue;
        Visited.push_back(V);
        Ball.push_back(V);
        Next.push_back(V);
      }
    Frontier = std::move(Next);
  }
  return Ball;
}

/// Depth-first placement of tree nodes (heap ids) onto host nodes.
class TreeSearch {
public:
  TreeSearch(const ExplicitScg &Host, unsigned NumGuestNodes,
             unsigned MaxDilation, uint64_t StepBudget)
      : Host(Host), MaxDilation(MaxDilation), StepBudget(StepBudget),
        Assignment(NumGuestNodes, 0), Used(Host.numNodes(), false) {
    // DFS pre-order over heap ids keeps each new node adjacent to an
    // already-placed one, so conflicts surface immediately.
    Order.reserve(NumGuestNodes);
    buildOrder(0, NumGuestNodes);
  }

  bool run() {
    Assignment[0] = 0; // root at the identity (vertex symmetry).
    Used[0] = true;
    return place(1);
  }

  const std::vector<NodeId> &assignment() const { return Assignment; }
  uint64_t stepsUsed() const { return Steps; }

private:
  void buildOrder(unsigned V, unsigned Count) {
    if (V >= Count)
      return;
    Order.push_back(V);
    buildOrder(2 * V + 1, Count);
    buildOrder(2 * V + 2, Count);
  }

  bool place(unsigned OrderIdx) {
    if (OrderIdx == Order.size())
      return true;
    if (Steps >= StepBudget)
      return false;
    unsigned V = Order[OrderIdx];
    NodeId ParentHost = Assignment[(V - 1) / 2];
    for (NodeId Candidate : ballAround(Host, ParentHost, MaxDilation)) {
      if (Used[Candidate])
        continue;
      ++Steps;
      Assignment[V] = Candidate;
      Used[Candidate] = true;
      if (place(OrderIdx + 1))
        return true;
      Used[Candidate] = false;
      if (Steps >= StepBudget)
        return false;
    }
    return false;
  }

  const ExplicitScg &Host;
  unsigned MaxDilation;
  uint64_t StepBudget;
  std::vector<unsigned> Order;
  std::vector<NodeId> Assignment;
  std::vector<bool> Used;
  uint64_t Steps = 0;
};

} // namespace

TreeEmbeddingResult scg::embedTreeIntoStar(const ExplicitScg &Star,
                                           unsigned Height,
                                           unsigned MaxDilation,
                                           uint64_t StepBudget) {
  assert(Star.network().kind() == NetworkKind::Star &&
         "host must be a star graph");
  unsigned NumGuestNodes = (1u << (Height + 1)) - 1;
  TreeEmbeddingResult Result;
  if (NumGuestNodes > Star.numNodes())
    return Result; // Cannot be one-to-one.

  TreeSearch Search(Star, NumGuestNodes, MaxDilation, StepBudget);
  bool Found = Search.run();
  Result.StepsUsed = Search.stepsUsed();
  if (!Found)
    return Result;

  Result.Found = true;
  Result.E.Host = &Star.network();
  Result.E.NodeMap.reserve(NumGuestNodes);
  for (NodeId Host : Search.assignment())
    Result.E.NodeMap.push_back(Star.label(Host));

  const SuperCayleyGraph *Net = &Star.network();
  std::vector<Permutation> Map = Result.E.NodeMap;
  Result.E.Route = [Net, Map = std::move(Map)](NodeId U, NodeId V) {
    GeneratorPath Path;
    for (unsigned Dim : starRouteDimensions(Map[U], Map[V]))
      Path.append(Dim - 2); // star generators are T_2..T_k in order.
    return Path;
  };
  return Result;
}
