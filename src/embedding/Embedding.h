//===- embedding/Embedding.h - Embedding framework + metrics ---*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph embeddings into super Cayley graphs, with the four quality metrics
/// Section 5 quotes:
///
///   load       max number of guest nodes mapped onto one host node
///   expansion  host nodes / guest nodes
///   dilation   max host-path length over guest edges
///   congestion max number of guest-edge paths crossing one directed host
///              link (each directed guest edge routed once, matching the
///              counting that yields congestion max(2n, l) in Section 3)
///
/// The guest is an explicit Graph; the host is a SuperCayleyGraph descriptor
/// (never materialized: congestion buckets by (Lehmer rank, link)). Routes
/// are produced on demand by a router callback so that template-generated
/// embeddings need not store one path per edge.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMBEDDING_EMBEDDING_H
#define SCG_EMBEDDING_EMBEDDING_H

#include "graph/Graph.h"
#include "routing/Path.h"

#include <functional>

namespace scg {

/// An embedding of a guest graph into a host super Cayley graph.
struct Embedding {
  const SuperCayleyGraph *Host = nullptr;
  /// Guest node -> host label.
  std::vector<Permutation> NodeMap;
  /// Routes the image of guest edge (U, V); must connect NodeMap[U] to
  /// NodeMap[V] in the host.
  std::function<GeneratorPath(NodeId U, NodeId V)> Route;
};

/// Measured embedding quality.
struct EmbeddingMetrics {
  bool Valid = false; ///< every route connects its mapped endpoints.
  unsigned Load = 0;
  double Expansion = 0.0;
  unsigned Dilation = 0;
  uint64_t Congestion = 0;
  double AverageRouteLength = 0.0;
};

/// Routes every directed guest edge and accumulates the metrics. Asserts
/// the host has at most 12 symbols (ranks must fit the congestion buckets).
EmbeddingMetrics measureEmbedding(const Graph &Guest, const Embedding &E);

/// Convenience: an identity node map on all of S_k (guest nodes are Lehmer
/// ranks of host labels), used by the star->SCG and TN->SCG embeddings.
std::vector<Permutation> identityNodeMap(unsigned K);

} // namespace scg

#endif // SCG_EMBEDDING_EMBEDDING_H
