//===- networks/Explicit.h - Materialized super Cayley graphs --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Materializes a SuperCayleyGraph descriptor as an explicit Graph whose
/// node ids are Lehmer ranks of the labels (identity = node 0). Also keeps
/// the per-link generator labels, which routing, embedding congestion, and
/// the simulator all need.
///
/// Construction is embarrassingly parallel: every Next-table slot is a pure
/// function of its rank (unrank, compose, re-rank), so the builder sweeps
/// rank chunks on the global ThreadPool. Each slot is written exactly once
/// regardless of chunking, so the table is byte-identical at every thread
/// count (pinned by tests/KernelDifferentialTest.cpp); SCG_THREADS=1 forces
/// the serial build.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_NETWORKS_EXPLICIT_H
#define SCG_NETWORKS_EXPLICIT_H

#include "core/SuperCayleyGraph.h"
#include "graph/Bfs.h"
#include "graph/Csr.h"
#include "graph/Graph.h"

namespace scg {

/// An explicit, Lehmer-ranked copy of a super Cayley graph. For each node
/// id u and generator index g, the neighbor id is Next[u * degree + g].
class ExplicitScg {
public:
  /// Materializes \p Network (stored by value, so temporaries are fine);
  /// asserts k <= 10 (k! nodes are enumerated).
  explicit ExplicitScg(SuperCayleyGraph Network);

  const SuperCayleyGraph &network() const { return Net; }

  NodeId numNodes() const { return Count; }
  unsigned degree() const { return Net.degree(); }

  /// Neighbor of node \p U along generator \p G.
  NodeId next(NodeId U, GenIndex G) const {
    assert(U < Count && G < degree() && "index out of range");
    return Next[uint64_t(U) * degree() + G];
  }

  /// The whole Count x degree neighbor table, row-major by node id. For
  /// whole-table consumers (differential tests, serialization).
  const std::vector<NodeId> &nextTable() const { return Next; }

  /// Label of node \p U (unranked on demand).
  Permutation label(NodeId U) const;

  /// Node id of label \p P.
  NodeId rankOf(const Permutation &P) const;

  /// Builds the plain Graph view (adjacency without generator labels).
  Graph toGraph() const;

  /// CSR view for the bit-parallel distance engine (graph/MsBfs.h): the
  /// row-major Next table already *is* CSR with uniform row length, so
  /// this is one table copy and an implicit offsets ramp -- no Graph
  /// intermediary, no per-node vectors.
  Csr toCsr() const;

private:
  SuperCayleyGraph Net;
  NodeId Count;
  std::vector<NodeId> Next; ///< Count x degree neighbor table.
};

/// BFS from \p Source straight over the Next table: the neighbor walk is a
/// contiguous row read, fully inlined through bfsCore (no Graph
/// materialization, no callback indirection).
BfsResult bfsExplicit(const ExplicitScg &Net, NodeId Source);

} // namespace scg

#endif // SCG_NETWORKS_EXPLICIT_H
