//===- networks/Clusters.cpp - Modular (cluster) structure ---------------===//

#include "networks/Clusters.h"

#include "perm/Lehmer.h"

#include <bit>
#include <cassert>
#include <set>

using namespace scg;

ClusterStructure::ClusterStructure(const ExplicitScg &Net) : Net(Net) {
  const SuperCayleyGraph &Scg = Net.network();
  assert(Scg.numBoxes() >= 2 && "single-level networks are one cluster");
  unsigned N = Scg.ballsPerBox();
  unsigned K = Scg.numSymbols();

  // The cluster signature is the ordered suffix of symbols at positions
  // n+1 .. k-1: an arrangement of k - n - 1 of the k symbols, which has a
  // dense mixed-radix rank in [0, k!/(n+1)!) -- exactly the cluster count.
  // Rank it with the same remaining-symbol bitmask used by Lehmer ranking
  // and assign ids through a flat first-encounter table instead of an
  // ordered map of suffix vectors.
  uint64_t KeySpace = factorial(K) / factorial(N + 1);
  std::vector<uint32_t> IdOfKey(KeySpace, UINT32_MAX);
  Labels.resize(Net.numNodes());
  uint32_t NextId = 0;
  for (NodeId U = 0; U != Net.numNodes(); ++U) {
    Permutation Label = Net.label(U);
    uint32_t Remaining = ~0u >> (32 - K);
    uint64_t Key = 0;
    for (unsigned P = N + 1; P != K; ++P) {
      uint32_t Bit = 1u << Label[P];
      Key = Key * (K - (P - N - 1)) +
            std::popcount(Remaining & (Bit - 1u));
      Remaining ^= Bit;
    }
    uint32_t &Id = IdOfKey[Key];
    if (Id == UINT32_MAX)
      Id = NextId++;
    Labels[U] = Id;
  }
  Count = NextId;
  Size = Net.numNodes() / Count;
  assert(Count * Size == Net.numNodes() && "uneven clusters");
  assert(Size == factorial(N + 1) && "cluster is not a nucleus network");
}

bool ClusterStructure::isIntraCluster(GenIndex G) const {
  return Net.network().generators()[G].Kind == GeneratorKind::Nucleus;
}

Graph ClusterStructure::clusterGraph() const {
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    for (GenIndex G = 0; G != Net.degree(); ++G) {
      if (isIntraCluster(G))
        continue;
      uint32_t A = Labels[U];
      uint32_t B = Labels[Net.next(U, G)];
      assert(A != B && "super link stayed inside a cluster");
      Edges.insert({A, B});
    }
  Graph G(static_cast<NodeId>(Count));
  for (auto [A, B] : Edges)
    G.addEdge(A, B);
  return G;
}
