//===- networks/Clusters.cpp - Modular (cluster) structure ---------------===//

#include "networks/Clusters.h"

#include "perm/Lehmer.h"

#include <cassert>
#include <map>
#include <set>

using namespace scg;

ClusterStructure::ClusterStructure(const ExplicitScg &Net) : Net(Net) {
  const SuperCayleyGraph &Scg = Net.network();
  assert(Scg.numBoxes() >= 2 && "single-level networks are one cluster");
  unsigned N = Scg.ballsPerBox();
  unsigned K = Scg.numSymbols();

  Labels.resize(Net.numNodes());
  std::map<std::vector<uint8_t>, uint32_t> Ids;
  for (NodeId U = 0; U != Net.numNodes(); ++U) {
    Permutation Label = Net.label(U);
    // The cluster signature: symbols outside the outside-ball slot and the
    // leftmost box (0-based positions n+1 .. k-1).
    std::vector<uint8_t> Suffix;
    Suffix.reserve(K - N - 1);
    for (unsigned P = N + 1; P != K; ++P)
      Suffix.push_back(Label[P]);
    auto [It, Inserted] = Ids.emplace(std::move(Suffix), Ids.size());
    Labels[U] = It->second;
    (void)Inserted;
  }
  Count = Ids.size();
  Size = Net.numNodes() / Count;
  assert(Count * Size == Net.numNodes() && "uneven clusters");
  assert(Size == factorial(N + 1) && "cluster is not a nucleus network");
}

bool ClusterStructure::isIntraCluster(GenIndex G) const {
  return Net.network().generators()[G].Kind == GeneratorKind::Nucleus;
}

Graph ClusterStructure::clusterGraph() const {
  std::set<std::pair<uint32_t, uint32_t>> Edges;
  for (NodeId U = 0; U != Net.numNodes(); ++U)
    for (GenIndex G = 0; G != Net.degree(); ++G) {
      if (isIntraCluster(G))
        continue;
      uint32_t A = Labels[U];
      uint32_t B = Labels[Net.next(U, G)];
      assert(A != B && "super link stayed inside a cluster");
      Edges.insert({A, B});
    }
  Graph G(static_cast<NodeId>(Count));
  for (auto [A, B] : Edges)
    G.addEdge(A, B);
  return G;
}
