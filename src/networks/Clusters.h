//===- networks/Clusters.h - Modular (cluster) structure -------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modular structure behind "a new class of interconnection networks
/// for the modular construction of parallel computers" (Section 6): in
/// every l-level super Cayley graph, the nucleus generators only permute
/// the leftmost n+1 symbols, so the nodes sharing the symbols at
/// positions n+2..k form a cluster -- a copy of the (n+1)-symbol nucleus
/// network ((n+1)-star for MS/RS/complete-RS, (n+1)-IS for the IS
/// classes). Super generators connect clusters. This module labels nodes
/// with cluster ids, classifies links, and builds the quotient cluster
/// graph.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_NETWORKS_CLUSTERS_H
#define SCG_NETWORKS_CLUSTERS_H

#include "networks/Explicit.h"

namespace scg {

/// Cluster labeling of an explicit super Cayley graph.
class ClusterStructure {
public:
  /// Builds the labeling for \p Net, which must be a multi-level class
  /// (numBoxes >= 2).
  explicit ClusterStructure(const ExplicitScg &Net);

  /// Number of clusters: k! / (n+1)!.
  uint64_t numClusters() const { return Count; }

  /// Nodes per cluster: (n+1)!.
  uint64_t clusterSize() const { return Size; }

  /// The cluster id of node \p U (dense, 0-based).
  uint32_t clusterOf(NodeId U) const { return Labels[U]; }

  /// True if generator \p G keeps every node inside its cluster (nucleus
  /// links do; super links never do).
  bool isIntraCluster(GenIndex G) const;

  /// Quotient graph: one node per cluster, an edge per pair of clusters
  /// joined by at least one super link (deduplicated, undirected form for
  /// symmetric networks).
  Graph clusterGraph() const;

private:
  const ExplicitScg &Net;
  std::vector<uint32_t> Labels;
  uint64_t Count = 0;
  uint64_t Size = 0;
};

} // namespace scg

#endif // SCG_NETWORKS_CLUSTERS_H
