//===- networks/Explicit.cpp - Materialized super Cayley graphs ----------===//

#include "networks/Explicit.h"

#include "perm/Lehmer.h"

#include <cassert>

using namespace scg;

ExplicitScg::ExplicitScg(SuperCayleyGraph Network) : Net(std::move(Network)) {
  unsigned K = Net.numSymbols();
  assert(K <= 10 && "explicit enumeration is limited to k <= 10 (k! nodes)");
  uint64_t N = factorial(K);
  Count = static_cast<NodeId>(N);
  unsigned Degree = Net.degree();
  Next.resize(N * Degree);
  for (uint64_t U = 0; U != N; ++U) {
    Permutation Label = unrankPermutation(U, K);
    for (GenIndex G = 0; G != Degree; ++G) {
      Permutation V = Net.neighbor(Label, G);
      Next[U * Degree + G] = static_cast<NodeId>(rankPermutation(V));
    }
  }
}

Permutation ExplicitScg::label(NodeId U) const {
  assert(U < Count && "node id out of range");
  return unrankPermutation(U, Net.numSymbols());
}

NodeId ExplicitScg::rankOf(const Permutation &P) const {
  assert(P.size() == Net.numSymbols() && "label size mismatch");
  return static_cast<NodeId>(rankPermutation(P));
}

Graph ExplicitScg::toGraph() const {
  Graph G(Count);
  for (NodeId U = 0; U != Count; ++U)
    for (GenIndex Gen = 0; Gen != degree(); ++Gen)
      G.addEdge(U, next(U, Gen));
  return G;
}
