//===- networks/Explicit.cpp - Materialized super Cayley graphs ----------===//

#include "networks/Explicit.h"

#include "perm/Lehmer.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace scg;

ExplicitScg::ExplicitScg(SuperCayleyGraph Network) : Net(std::move(Network)) {
  unsigned K = Net.numSymbols();
  assert(K <= 10 && "explicit enumeration is limited to k <= 10 (k! nodes)");
  uint64_t N = factorial(K);
  Count = static_cast<NodeId>(N);
  unsigned Degree = Net.degree();
  Next.resize(N * Degree);
  // Each slot Next[U * Degree + G] is a pure function of (U, G) and is
  // written exactly once, so any chunking of the rank range produces the
  // identical table; the sweep parallelizes over rank chunks on the global
  // pool (SCG_THREADS=1 forces the serial build).
  ThreadPool::global().parallelForChunks(
      0, N, /*ChunkSize=*/0, [&](uint64_t Begin, uint64_t End) {
        Permutation Neighbor;
        for (uint64_t U = Begin; U != End; ++U) {
          Permutation Label = unrankPermutation(U, K);
          for (GenIndex G = 0; G != Degree; ++G) {
            Net.neighborInto(Label, G, Neighbor);
            Next[U * Degree + G] = static_cast<NodeId>(
                rankPermutation(Neighbor));
          }
        }
      });
}

Permutation ExplicitScg::label(NodeId U) const {
  assert(U < Count && "node id out of range");
  return unrankPermutation(U, Net.numSymbols());
}

NodeId ExplicitScg::rankOf(const Permutation &P) const {
  assert(P.size() == Net.numSymbols() && "label size mismatch");
  return static_cast<NodeId>(rankPermutation(P));
}

Graph ExplicitScg::toGraph() const {
  Graph G(Count);
  for (NodeId U = 0; U != Count; ++U)
    for (GenIndex Gen = 0; Gen != degree(); ++Gen)
      G.addEdge(U, next(U, Gen));
  return G;
}

Csr ExplicitScg::toCsr() const { return Csr(Count, degree(), Next); }

BfsResult scg::bfsExplicit(const ExplicitScg &Net, NodeId Source) {
  const std::vector<NodeId> &Table = Net.nextTable();
  unsigned Degree = Net.degree();
  return bfsCore(Net.numNodes(), Source,
                 [&Table, Degree](NodeId Node, auto &&Sink) {
                   const NodeId *Row = Table.data() + uint64_t(Node) * Degree;
                   for (unsigned G = 0; G != Degree; ++G)
                     Sink(Row[G]);
                 });
}
