//===- networks/Classic.cpp - Classic guest topologies -------------------===//

#include "networks/Classic.h"

#include <cassert>

using namespace scg;

Graph scg::hypercube(unsigned Dim) {
  assert(Dim < 31 && "hypercube dimension too large to materialize");
  NodeId N = NodeId(1) << Dim;
  Graph G(N);
  for (NodeId U = 0; U != N; ++U)
    for (unsigned Bit = 0; Bit != Dim; ++Bit) {
      NodeId V = U ^ (NodeId(1) << Bit);
      if (U < V)
        G.addUndirectedEdge(U, V);
    }
  return G;
}

Graph scg::mesh2D(unsigned Rows, unsigned Cols) {
  assert(Rows >= 1 && Cols >= 1 && "mesh extents must be positive");
  Graph G(Rows * Cols);
  for (unsigned R = 0; R != Rows; ++R)
    for (unsigned C = 0; C != Cols; ++C) {
      NodeId U = R * Cols + C;
      if (C + 1 != Cols)
        G.addUndirectedEdge(U, U + 1);
      if (R + 1 != Rows)
        G.addUndirectedEdge(U, U + Cols);
    }
  return G;
}

Graph scg::mixedRadixMesh(const std::vector<unsigned> &Dims) {
  uint64_t N = 1;
  for (unsigned D : Dims) {
    assert(D >= 1 && "mesh extents must be positive");
    N *= D;
  }
  assert(N <= (uint64_t(1) << 31) && "mixed-radix mesh too large");
  Graph G(static_cast<NodeId>(N));
  for (uint64_t U = 0; U != N; ++U) {
    std::vector<unsigned> Coords = mixedRadixCoords(U, Dims);
    for (size_t Axis = 0; Axis != Dims.size(); ++Axis) {
      if (Coords[Axis] + 1 == Dims[Axis])
        continue;
      ++Coords[Axis];
      G.addUndirectedEdge(static_cast<NodeId>(U),
                          static_cast<NodeId>(mixedRadixId(Coords, Dims)));
      --Coords[Axis];
    }
  }
  return G;
}

std::vector<unsigned>
scg::mixedRadixCoords(uint64_t Id, const std::vector<unsigned> &Dims) {
  std::vector<unsigned> Coords(Dims.size(), 0);
  for (size_t Axis = Dims.size(); Axis != 0; --Axis) {
    Coords[Axis - 1] = static_cast<unsigned>(Id % Dims[Axis - 1]);
    Id /= Dims[Axis - 1];
  }
  assert(Id == 0 && "id out of range for the given extents");
  return Coords;
}

uint64_t scg::mixedRadixId(const std::vector<unsigned> &Coords,
                           const std::vector<unsigned> &Dims) {
  assert(Coords.size() == Dims.size() && "coordinate arity mismatch");
  uint64_t Id = 0;
  for (size_t Axis = 0; Axis != Dims.size(); ++Axis) {
    assert(Coords[Axis] < Dims[Axis] && "coordinate out of range");
    Id = Id * Dims[Axis] + Coords[Axis];
  }
  return Id;
}

Graph scg::completeBinaryTree(unsigned Height) {
  assert(Height < 30 && "tree too tall to materialize");
  NodeId N = (NodeId(1) << (Height + 1)) - 1;
  Graph G(N);
  for (NodeId V = 1; V != N; ++V)
    G.addUndirectedEdge((V - 1) / 2, V);
  return G;
}
