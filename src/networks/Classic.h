//===- networks/Classic.h - Classic guest topologies -----------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic topologies Section 5 embeds into super Cayley graphs:
/// hypercubes, 2-D meshes, mixed-radix (2x3x...xk) meshes, and complete
/// binary trees. Each builder returns an explicit undirected Graph with a
/// documented node-id convention so the embedding constructions can compute
/// coordinates from ids without extra lookup tables.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_NETWORKS_CLASSIC_H
#define SCG_NETWORKS_CLASSIC_H

#include "graph/Graph.h"

#include <vector>

namespace scg {

/// d-dimensional hypercube; node id = bit vector, neighbors differ in one
/// bit. 2^d nodes.
Graph hypercube(unsigned Dim);

/// m1 x m2 mesh; node id = Row * Cols + Col, 4-neighbor grid (no wrap).
Graph mesh2D(unsigned Rows, unsigned Cols);

/// Mixed-radix mesh with extents Dims[0] x Dims[1] x ...; node id is the
/// mixed-radix number with Dims[0] the most significant extent; neighbors
/// differ by +-1 in exactly one coordinate (no wrap).
Graph mixedRadixMesh(const std::vector<unsigned> &Dims);

/// Decodes node \p Id of mixedRadixMesh(\p Dims) into coordinates.
std::vector<unsigned> mixedRadixCoords(uint64_t Id,
                                       const std::vector<unsigned> &Dims);

/// Encodes coordinates into a mixedRadixMesh node id.
uint64_t mixedRadixId(const std::vector<unsigned> &Coords,
                      const std::vector<unsigned> &Dims);

/// Complete binary tree of height \p Height (2^{Height+1} - 1 nodes); node
/// id is heap order: root 0, children of v are 2v+1 and 2v+2.
Graph completeBinaryTree(unsigned Height);

} // namespace scg

#endif // SCG_NETWORKS_CLASSIC_H
