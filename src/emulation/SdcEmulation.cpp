//===- emulation/SdcEmulation.cpp - Theorems 1-3 emulation paths ---------===//

#include "emulation/SdcEmulation.h"

#include "emulation/DimensionMap.h"

#include <cassert>

using namespace scg;

bool scg::supportsStarEmulation(const SuperCayleyGraph &Net) {
  switch (Net.kind()) {
  case NetworkKind::Star:
  case NetworkKind::Transposition:
  case NetworkKind::InsertionSelection:
  case NetworkKind::MacroStar:
  case NetworkKind::RotationStar:
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::MacroIS:
  case NetworkKind::RotationIS:
  case NetworkKind::CompleteRotationIS:
    return true;
  default:
    return false;
  }
}

/// Finds the link matching \p G in \p Net (asserting it is present).
static GenIndex requireAction(const SuperCayleyGraph &Net,
                              const Generator &G) {
  std::optional<GenIndex> Index = Net.generators().findLink(G);
  assert(Index && "required generator is not a link of this network");
  return *Index;
}

/// Appends the nucleus word realizing T_{nucleus dimension \p C} within the
/// leftmost box: T_C itself for transposition nuclei, I_C I_{C-1}^-1 for
/// insertion-selection nuclei (Theorem 2: the selection is dropped for
/// C = 2 where I_2 alone is the transposition).
void scg::appendNucleusWord(const SuperCayleyGraph &Net, unsigned C,
                            GeneratorPath &Path) {
  unsigned K = Net.numSymbols();
  switch (Net.kind()) {
  case NetworkKind::Star:
  case NetworkKind::MacroStar:
  case NetworkKind::RotationStar:
  case NetworkKind::CompleteRotationStar:
    Path.append(requireAction(Net, makeTransposition(K, C)));
    return;
  case NetworkKind::Transposition:
    Path.append(requireAction(Net, makePairTransposition(K, 1, C)));
    return;
  case NetworkKind::InsertionSelection:
  case NetworkKind::MacroIS:
  case NetworkKind::RotationIS:
  case NetworkKind::CompleteRotationIS:
    Path.append(requireAction(Net, makeInsertion(K, C)));
    if (C > 2)
      Path.append(requireAction(Net, makeSelection(K, C - 1)));
    return;
  default:
    assert(false && "network cannot emulate a transposition nucleus");
  }
}

/// Appends the super word bringing box \p Box (2..l) to the leftmost
/// position (or back, for \p Inverse = true).
void scg::appendBringBoxWord(const SuperCayleyGraph &Net, unsigned Box,
                             bool Inverse, GeneratorPath &Path) {
  unsigned K = Net.numSymbols();
  unsigned N = Net.ballsPerBox();
  unsigned L = Net.numBoxes();
  switch (Net.kind()) {
  case NetworkKind::MacroStar:
  case NetworkKind::MacroIS:
    // S_Box is an involution: the same link both ways.
    Path.append(requireAction(Net, makeSwap(K, N, Box)));
    return;
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::CompleteRotationIS: {
    int Exp = Inverse ? int(Box - 1) : -int(Box - 1);
    Path.append(requireAction(Net, makeRotation(K, N, Exp)));
    return;
  }
  case NetworkKind::RotationStar:
  case NetworkKind::RotationIS: {
    // Only R and R^-1 are links: expand R^{-(Box-1)} (or its inverse) into
    // single steps, rotating in the cheaper direction. When L = 2, R^-1
    // deduplicates against R, so requireAction finds the same link.
    unsigned Shift = Box - 1;       // bring = rotate boxes by -Shift...
    unsigned Forward = L - Shift;   // ...equivalently by +Forward.
    bool Backward = Shift <= Forward;
    unsigned Count = Backward ? Shift : Forward;
    int StepExp = Backward ? -1 : 1;
    if (Inverse)
      StepExp = -StepExp;
    GenIndex Link = requireAction(Net, makeRotation(K, N, StepExp));
    for (unsigned I = 0; I != Count; ++I)
      Path.append(Link);
    return;
  }
  default:
    assert(false && "network has no boxes to bring frontward");
  }
}

GeneratorPath scg::starDimensionPath(const SuperCayleyGraph &Net,
                                     unsigned J) {
  assert(supportsStarEmulation(Net) && "unsupported network kind");
  assert(J >= 2 && J <= Net.numSymbols() && "star dimension out of range");
  GeneratorPath Path;
  unsigned N = Net.ballsPerBox();
  DimensionParts Parts = decomposeDimension(J, N);
  if (Parts.J1 == 0) {
    // Dimension within the leftmost box: nucleus moves only.
    appendNucleusWord(Net, Parts.J0 + 2, Path);
  } else {
    unsigned Box = Parts.J1 + 1;
    appendBringBoxWord(Net, Box, /*Inverse=*/false, Path);
    appendNucleusWord(Net, Parts.J0 + 2, Path);
    appendBringBoxWord(Net, Box, /*Inverse=*/true, Path);
  }
  assert(Path.netEffect(Net) ==
             makeTransposition(Net.numSymbols(), J).Sigma &&
         "emulation path does not realize T_j");
  return Path;
}

SdcEmulationReport scg::analyzeSdcEmulation(const SuperCayleyGraph &Net) {
  SdcEmulationReport Report;
  unsigned K = Net.numSymbols();
  uint64_t TotalLength = 0;
  for (unsigned J = 2; J <= K; ++J) {
    GeneratorPath Path = starDimensionPath(Net, J);
    Report.Slowdown = std::max(Report.Slowdown, Path.length());
    if (Path.length() == 1)
      ++Report.DirectDimensions;
    TotalLength += Path.length();
  }
  Report.AveragePathLength = double(TotalLength) / double(K - 1);
  return Report;
}

unsigned scg::paperSdcSlowdownBound(const SuperCayleyGraph &Net) {
  switch (Net.kind()) {
  case NetworkKind::Star:
    return 1;
  case NetworkKind::InsertionSelection:
    return 2; // Theorem 2.
  case NetworkKind::MacroStar:
  case NetworkKind::CompleteRotationStar:
    return 3; // Theorem 1.
  case NetworkKind::MacroIS:
  case NetworkKind::CompleteRotationIS:
    return 4; // Theorem 3.
  default:
    assert(false && "the paper states no SDC slowdown bound for this kind");
    return 0;
  }
}

std::optional<GenIndex> scg::linkBetween(const SuperCayleyGraph &Net,
                                         const Permutation &A,
                                         const Permutation &B) {
  // A o Sigma = B  =>  Sigma = A^-1 o B.
  return Net.generators().findByAction(A.inverse().compose(B));
}
