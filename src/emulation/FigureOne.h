//===- emulation/FigureOne.h - Renders the paper's Figure 1 ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASCII rendering of all-port emulation schedules in the layout of the
/// paper's Figure 1: one column per emulated star dimension, one row per
/// time step, each cell naming the generator used. Figure 1a is
/// renderFigureOne(MS(4,3)) (13-star), Figure 1b renderFigureOne(MS(5,3))
/// (16-star); the complete-RS variants substitute rotation generators.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMULATION_FIGUREONE_H
#define SCG_EMULATION_FIGUREONE_H

#include "emulation/AllPortSchedule.h"

#include <string>

namespace scg {

/// Renders \p Schedule in Figure 1 layout for \p Net.
std::string renderSchedule(const SuperCayleyGraph &Net,
                           const AllPortSchedule &Schedule);

/// Builds the constructive schedule for \p Net and renders it together
/// with the caption statistics (makespan, fully-used steps, average link
/// utilization) the figure caption reports.
std::string renderFigureOne(const SuperCayleyGraph &Net);

} // namespace scg

#endif // SCG_EMULATION_FIGUREONE_H
