//===- emulation/SdcEmulation.h - Theorems 1-3 emulation paths -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-dimension-communication (SDC) emulation of the (ln+1)-star on
/// super Cayley graphs: for every star dimension j, a fixed generator word
/// whose net effect equals T_j, so every node can emulate its dimension-j
/// link by the same relative path (Theorems 1-3):
///
///   MS(l,n)/complete-RS(l,n):  B_{j1+1}  T_{j0+2}  B_{j1+1}^-1   (<= 3)
///   IS(k):                     I_j  I_{j-1}^-1                   (<= 2)
///   MIS/complete-RIS(l,n):     B  I_{j0+2}  I_{j0+1}^-1  B^-1    (<= 4)
///
/// where B_i = S_i for swap-based networks and R^{-(i-1)} for
/// complete-rotation networks. For the non-complete rotation networks (RS,
/// RIS) the rotation is expanded into min(j1, l-j1) single-rotation hops,
/// which is what makes their diameter/slowdown grow with l -- reported, not
/// claimed constant, by the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMULATION_SDCEMULATION_H
#define SCG_EMULATION_SDCEMULATION_H

#include "routing/Path.h"

namespace scg {

/// True if \p Net can emulate star dimensions by a fixed path template
/// (star itself, TN, and all T- or IS-nucleus super Cayley graphs; the
/// insertion-only rotator classes cannot invert a transposition with a
/// bounded template).
bool supportsStarEmulation(const SuperCayleyGraph &Net);

/// Returns the emulation path for star dimension \p J (2 <= J <= k) in
/// \p Net. The net effect of the returned word equals the action of T_J.
/// Asserts supportsStarEmulation(Net).
GeneratorPath starDimensionPath(const SuperCayleyGraph &Net, unsigned J);

/// Appends to \p Path the nucleus word realizing the transposition T_C
/// inside the leftmost box (2 <= C <= n+1 for box networks; up to k for
/// single-level ones): T_C itself for transposition nuclei, I_C I_{C-1}^-1
/// for insertion-selection nuclei.
void appendNucleusWord(const SuperCayleyGraph &Net, unsigned C,
                       GeneratorPath &Path);

/// Appends to \p Path the super word bringing box \p Box (2 <= Box <= l) to
/// the leftmost position, or returning it when \p Inverse.
void appendBringBoxWord(const SuperCayleyGraph &Net, unsigned Box,
                        bool Inverse, GeneratorPath &Path);

/// Finds the link of \p Net whose one hop goes from \p A to \p B (their
/// relative permutation is a generator action), if any.
std::optional<GenIndex> linkBetween(const SuperCayleyGraph &Net,
                                    const Permutation &A,
                                    const Permutation &B);

/// Per-network summary of the SDC emulation.
struct SdcEmulationReport {
  unsigned Slowdown = 0;        ///< max path length over dimensions.
  unsigned DirectDimensions = 0; ///< dims emulated by a single link.
  double AveragePathLength = 0.0;
};

/// Builds all dimension paths and summarizes (Theorems 1-3 numbers).
SdcEmulationReport analyzeSdcEmulation(const SuperCayleyGraph &Net);

/// The slowdown bound the paper claims for \p Net: 1 for star, 2 for IS,
/// 3 for MS/complete-RS, 4 for MIS/complete-RIS; asserts for other kinds.
unsigned paperSdcSlowdownBound(const SuperCayleyGraph &Net);

} // namespace scg

#endif // SCG_EMULATION_SDCEMULATION_H
