//===- emulation/FigureOne.cpp - Renders the paper's Figure 1 ------------===//

#include "emulation/FigureOne.h"

#include "support/Format.h"

#include <sstream>

using namespace scg;

std::string scg::renderSchedule(const SuperCayleyGraph &Net,
                                const AllPortSchedule &Schedule) {
  TextTable Table;
  std::vector<std::string> Header{"step"};
  for (const DimensionSchedule &DS : Schedule.Dimensions)
    Header.push_back("j=" + std::to_string(DS.Dim));
  Table.setHeader(std::move(Header));

  for (unsigned T = 1; T <= Schedule.Makespan; ++T) {
    std::vector<std::string> Row{std::to_string(T)};
    for (const DimensionSchedule &DS : Schedule.Dimensions) {
      std::string Cell = ".";
      for (const ScheduledHop &Hop : DS.Hops)
        if (Hop.Time == T)
          Cell = Net.generators()[Hop.Link].Name;
      Row.push_back(std::move(Cell));
    }
    Table.addRow(std::move(Row));
  }
  return Table.render();
}

std::string scg::renderFigureOne(const SuperCayleyGraph &Net) {
  AllPortSchedule Schedule = buildAllPortSchedule(Net);
  ScheduleStats Stats = computeScheduleStats(Net, Schedule);
  std::ostringstream OS;
  OS << "All-port emulation of the " << Net.numSymbols() << "-star on "
     << Net.name() << " (degree " << Net.degree() << ")\n";
  OS << renderSchedule(Net, Schedule);
  OS << "makespan " << Schedule.Makespan << " (paper bound "
     << paperAllPortSlowdownBound(Net) << "), links fully used during "
     << Stats.FullyUsedSteps << " of " << Schedule.Makespan
     << " steps, average utilization "
     << formatDouble(100.0 * Stats.AverageUtilization, 1) << "%\n";
  return OS.str();
}
