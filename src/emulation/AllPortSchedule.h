//===- emulation/AllPortSchedule.h - Theorems 4-5 schedules ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All-port emulation of the (ln+1)-star on super Cayley graphs: every node
/// emulates all k-1 star dimensions concurrently, so the per-dimension SDC
/// paths must be packed into time steps such that each link (generator) is
/// used at most once per step -- by vertex symmetry the same schedule is
/// executed relative to every node. The makespan is the emulation slowdown:
///
///   Theorem 4:  MS(l,n), complete-RS(l,n):   max(2n, l+1)
///   Theorem 5:  MIS(l,n), complete-RIS(l,n): max(2n, l+2)
///
/// Two schedule builders are provided: a constructive one that meets the
/// paper's bounds by Latin-square coloring of the nucleus phase (the
/// generalization of the explicit schedules in Figure 1), and a greedy
/// list scheduler usable on any emulation-capable network (including the
/// non-complete rotation classes, for which the paper claims no bound).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMULATION_ALLPORTSCHEDULE_H
#define SCG_EMULATION_ALLPORTSCHEDULE_H

#include "routing/Path.h"

namespace scg {

/// One link transmission of one dimension's emulation path.
struct ScheduledHop {
  unsigned Time;   ///< 1-based time step.
  GenIndex Link;   ///< link (generator) used.
};

/// The scheduled emulation of one star dimension: hops in path order with
/// strictly increasing times.
struct DimensionSchedule {
  unsigned Dim = 0; ///< star dimension j, 2 <= j <= k.
  std::vector<ScheduledHop> Hops;
};

/// A complete all-port emulation schedule.
struct AllPortSchedule {
  unsigned Makespan = 0;
  std::vector<DimensionSchedule> Dimensions; ///< dims 2..k in order.
};

/// Builds the constructive schedule meeting the paper's bound. Supported
/// kinds: Star, Transposition, InsertionSelection, MacroStar,
/// CompleteRotationStar, MacroIS, CompleteRotationIS (asserts otherwise).
AllPortSchedule buildAllPortSchedule(const SuperCayleyGraph &Net);

/// Greedy list scheduler over the same job set; works for every network
/// with supportsStarEmulation(), including RS and RIS.
AllPortSchedule buildAllPortScheduleGreedy(const SuperCayleyGraph &Net);

/// Checks schedule validity: every dimension's hop sequence equals its
/// emulation path, times strictly increase along each path, and no link
/// carries two transmissions in the same step. Returns false (and never
/// asserts) so tests can report the violation.
bool validateAllPortSchedule(const SuperCayleyGraph &Net,
                             const AllPortSchedule &Schedule);

/// The slowdown the paper claims: 1 for star/TN, 2 for IS, max(2n, l+1)
/// for MS/complete-RS, max(2n, l+2) for MIS/complete-RIS. Asserts for
/// other kinds.
unsigned paperAllPortSlowdownBound(const SuperCayleyGraph &Net);

/// Generic makespan lower bound from link demand and chain windows: for
/// every link g and thresholds (p, s), the ops with >= p predecessors and
/// >= s successors in their chains must fit into [1+p, M-s].
unsigned allPortLowerBound(const SuperCayleyGraph &Net);

/// Link-usage statistics of a schedule.
struct ScheduleStats {
  uint64_t Transmissions = 0;   ///< total scheduled hops.
  uint64_t Slots = 0;           ///< degree * makespan.
  double AverageUtilization = 0.0;
  unsigned FullyUsedSteps = 0;  ///< steps where every link transmits.
};

ScheduleStats computeScheduleStats(const SuperCayleyGraph &Net,
                                   const AllPortSchedule &Schedule);

} // namespace scg

#endif // SCG_EMULATION_ALLPORTSCHEDULE_H
