//===- emulation/ScgRouter.cpp - Emulation-based unicast routing ---------===//

#include "emulation/ScgRouter.h"

#include "emulation/SdcEmulation.h"
#include "routing/StarRouter.h"

#include <cassert>

using namespace scg;

GeneratorPath scg::routeViaStarEmulation(const SuperCayleyGraph &Net,
                                         const Permutation &Src,
                                         const Permutation &Dst) {
  assert(supportsStarEmulation(Net) && "unsupported network kind");
  GeneratorPath Path;
  for (unsigned Dim : starRouteDimensions(Src, Dst)) {
    GeneratorPath Template = starDimensionPath(Net, Dim);
    for (GenIndex G : Template.hops())
      Path.append(G);
  }
  assert(Path.connects(Net, Src, Dst) && "lifted route is broken");
  return Path;
}

unsigned scg::liftedRouteBound(const SuperCayleyGraph &Net) {
  // Star diameter is floor(3(k-1)/2) [1]; each star hop expands to at most
  // the SDC slowdown of the host.
  unsigned K = Net.numSymbols();
  unsigned StarDiameter = 3 * (K - 1) / 2;
  return analyzeSdcEmulation(Net).Slowdown * StarDiameter;
}
