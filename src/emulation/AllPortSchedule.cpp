//===- emulation/AllPortSchedule.cpp - Theorems 4-5 schedules ------------===//

#include "emulation/AllPortSchedule.h"

#include "emulation/DimensionMap.h"
#include "emulation/SdcEmulation.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace scg;

namespace {

/// True for the four box-structured classes Theorems 4-5 schedule
/// constructively.
bool isBoxScheduled(NetworkKind Kind) {
  switch (Kind) {
  case NetworkKind::MacroStar:
  case NetworkKind::CompleteRotationStar:
  case NetworkKind::MacroIS:
  case NetworkKind::CompleteRotationIS:
    return true;
  default:
    return false;
  }
}

/// Emits all per-dimension paths as unscheduled hop lists.
std::vector<DimensionSchedule> makeJobs(const SuperCayleyGraph &Net) {
  std::vector<DimensionSchedule> Jobs;
  for (unsigned J = 2; J <= Net.numSymbols(); ++J) {
    DimensionSchedule DS;
    DS.Dim = J;
    GeneratorPath Path = starDimensionPath(Net, J);
    for (GenIndex G : Path.hops())
      DS.Hops.push_back({0, G});
    Jobs.push_back(std::move(DS));
  }
  return Jobs;
}

} // namespace

AllPortSchedule scg::buildAllPortSchedule(const SuperCayleyGraph &Net) {
  assert(supportsStarEmulation(Net) && "network cannot emulate a star");
  AllPortSchedule Schedule;
  Schedule.Dimensions = makeJobs(Net);

  if (!isBoxScheduled(Net.kind())) {
    assert((Net.kind() == NetworkKind::Star ||
            Net.kind() == NetworkKind::Transposition ||
            Net.kind() == NetworkKind::InsertionSelection) &&
           "use buildAllPortScheduleGreedy for RS/RIS networks");
    // Single-level networks: hop h of every dimension at time h+1. The hop
    // links are pairwise distinct per position (I_j at step 1, I'_{j-1} at
    // step 2), so no conflicts arise.
    for (DimensionSchedule &DS : Schedule.Dimensions)
      for (unsigned H = 0; H != DS.Hops.size(); ++H) {
        DS.Hops[H].Time = H + 1;
        Schedule.Makespan = std::max(Schedule.Makespan, H + 1);
      }
    return Schedule;
  }

  unsigned N = Net.ballsPerBox();
  unsigned L = Net.numBoxes();
  // Latin-rectangle coloring of the nucleus phase: box row r = box - 2,
  // column c = j0. color(r, c) = (r + c) mod max(l-1, n) gives every box a
  // set of distinct nucleus times and every nucleus link distinct users per
  // time (generalizing the explicit schedules of Figure 1).
  unsigned Mp = std::max(L - 1, N);

  // Per box: (job index, first middle time) for B/B^-1 assignment.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> BoxJobs(L + 1);

  for (unsigned Idx = 0; Idx != Schedule.Dimensions.size(); ++Idx) {
    DimensionSchedule &DS = Schedule.Dimensions[Idx];
    DimensionParts Parts = decomposeDimension(DS.Dim, N);
    if (Parts.J1 == 0) {
      // Direct dimension: nucleus hops at times 1, 2 (free by construction:
      // box jobs touch nucleus links only at times >= 2 resp. >= 3).
      for (unsigned H = 0; H != DS.Hops.size(); ++H)
        DS.Hops[H].Time = H + 1;
      continue;
    }
    unsigned Box = Parts.J1 + 1;
    unsigned Row = Box - 2;
    unsigned Tau = (Row + Parts.J0) % Mp + 2;
    // Middle (nucleus) hops at Tau, Tau+1; first and last hops are B/B^-1.
    assert(DS.Hops.size() >= 3 && DS.Hops.size() <= 4 &&
           "box dimension paths have 3 or 4 hops");
    for (unsigned H = 1; H + 1 != DS.Hops.size(); ++H)
      DS.Hops[H].Time = Tau + (H - 1);
    BoxJobs[Box].push_back({Idx, Tau});
  }

  // B hops: per box, jobs sorted by nucleus time get bring-times 1..n
  // (valid: the i-th smallest Tau is >= i+1). B^-1 hops: greedy earliest
  // slot >= max(last middle + 1, n + 1); >= n+1 keeps them disjoint from
  // every box's B-phase, which shares the link for MS (S_i is its own
  // inverse) and for complete-RS (R^m carries box m+1's returns and box
  // l-m+1's brings).
  for (unsigned Box = 2; Box <= L; ++Box) {
    auto &Jobs = BoxJobs[Box];
    assert(Jobs.size() == N && "every box hosts exactly n dimensions");
    std::sort(Jobs.begin(), Jobs.end(),
              [](const auto &A, const auto &B) { return A.second < B.second; });
    unsigned PrevReturn = N; // next return slot must exceed this.
    for (unsigned I = 0; I != Jobs.size(); ++I) {
      DimensionSchedule &DS = Schedule.Dimensions[Jobs[I].first];
      DS.Hops.front().Time = I + 1;
      unsigned LastMiddle = DS.Hops[DS.Hops.size() - 2].Time;
      unsigned Return = std::max(LastMiddle + 1, PrevReturn + 1);
      DS.Hops.back().Time = Return;
      PrevReturn = Return;
    }
  }

  for (const DimensionSchedule &DS : Schedule.Dimensions)
    for (const ScheduledHop &Hop : DS.Hops)
      Schedule.Makespan = std::max(Schedule.Makespan, Hop.Time);
  return Schedule;
}

AllPortSchedule
scg::buildAllPortScheduleGreedy(const SuperCayleyGraph &Net) {
  assert(supportsStarEmulation(Net) && "network cannot emulate a star");
  AllPortSchedule Schedule;
  Schedule.Dimensions = makeJobs(Net);

  struct JobState {
    unsigned Next = 0;  ///< next unscheduled hop.
    unsigned Ready = 1; ///< earliest time for that hop.
  };
  std::vector<JobState> State(Schedule.Dimensions.size());
  // Remaining demand per link, for the scarcity tie-break.
  std::vector<unsigned> Demand(Net.degree(), 0);
  unsigned Pending = 0;
  for (const DimensionSchedule &DS : Schedule.Dimensions) {
    Pending += DS.Hops.size();
    for (const ScheduledHop &Hop : DS.Hops)
      ++Demand[Hop.Link];
  }

  for (unsigned T = 1; Pending != 0; ++T) {
    assert(T < 10000 && "greedy schedule failed to converge");
    for (GenIndex Link = 0; Link != Net.degree(); ++Link) {
      // Choose the ready job with the most remaining hops; break ties by
      // rotating over dimensions with the time step so parallel boxes
      // stagger their nucleus columns.
      int Best = -1;
      unsigned BestKey = 0;
      for (unsigned J = 0; J != State.size(); ++J) {
        const DimensionSchedule &DS = Schedule.Dimensions[J];
        const JobState &JS = State[J];
        if (JS.Next >= DS.Hops.size() || DS.Hops[JS.Next].Link != Link ||
            JS.Ready > T)
          continue;
        unsigned Remaining = DS.Hops.size() - JS.Next;
        unsigned Rotated = (DS.Dim + T) % Schedule.Dimensions.size();
        unsigned Key = Remaining * 1024 + Rotated;
        if (Best < 0 || Key > BestKey) {
          Best = static_cast<int>(J);
          BestKey = Key;
        }
      }
      if (Best < 0)
        continue;
      DimensionSchedule &DS = Schedule.Dimensions[Best];
      JobState &JS = State[Best];
      DS.Hops[JS.Next].Time = T;
      --Demand[Link];
      ++JS.Next;
      JS.Ready = T + 1;
      --Pending;
      Schedule.Makespan = std::max(Schedule.Makespan, T);
    }
  }
  return Schedule;
}

bool scg::validateAllPortSchedule(const SuperCayleyGraph &Net,
                                  const AllPortSchedule &Schedule) {
  if (Schedule.Dimensions.size() != Net.numSymbols() - 1)
    return false;
  std::set<std::pair<unsigned, GenIndex>> Used;
  for (const DimensionSchedule &DS : Schedule.Dimensions) {
    if (DS.Dim < 2 || DS.Dim > Net.numSymbols())
      return false;
    // Hop links must equal the emulation path for this dimension.
    GeneratorPath Expected = starDimensionPath(Net, DS.Dim);
    if (Expected.length() != DS.Hops.size())
      return false;
    unsigned PrevTime = 0;
    for (unsigned H = 0; H != DS.Hops.size(); ++H) {
      const ScheduledHop &Hop = DS.Hops[H];
      if (Hop.Link != Expected.hops()[H])
        return false;
      if (Hop.Time <= PrevTime || Hop.Time > Schedule.Makespan)
        return false;
      PrevTime = Hop.Time;
      if (!Used.insert({Hop.Time, Hop.Link}).second)
        return false; // Link used twice in one step.
    }
  }
  return true;
}

unsigned scg::paperAllPortSlowdownBound(const SuperCayleyGraph &Net) {
  unsigned N = Net.ballsPerBox();
  unsigned L = Net.numBoxes();
  switch (Net.kind()) {
  case NetworkKind::Star:
  case NetworkKind::Transposition:
    return 1;
  case NetworkKind::InsertionSelection:
    return 2; // Theorem 2.
  case NetworkKind::MacroStar:
  case NetworkKind::CompleteRotationStar:
    return std::max(2 * N, L + 1); // Theorem 4.
  case NetworkKind::MacroIS:
  case NetworkKind::CompleteRotationIS:
    return std::max(2 * N, L + 2); // Theorem 5.
  default:
    assert(false && "the paper states no all-port bound for this kind");
    return 0;
  }
}

unsigned scg::allPortLowerBound(const SuperCayleyGraph &Net) {
  // For each link, bucket ops by (predecessors, successors) in their chain;
  // ops with >= p preds and >= s succs must fit into [1+p, M-s], giving
  // M >= count(p, s) + p + s.
  std::map<GenIndex, std::vector<std::pair<unsigned, unsigned>>> Ops;
  unsigned MaxLen = 0;
  for (unsigned J = 2; J <= Net.numSymbols(); ++J) {
    GeneratorPath Path = starDimensionPath(Net, J);
    MaxLen = std::max(MaxLen, Path.length());
    for (unsigned H = 0; H != Path.length(); ++H)
      Ops[Path.hops()[H]].push_back({H, Path.length() - 1 - H});
  }
  unsigned Bound = MaxLen;
  for (auto &[Link, List] : Ops) {
    // Evaluate every (p, s) threshold combination present on this link
    // (not only the pairs attached to a single op): ops with >= p preds
    // and >= s succs all occupy [1+p, M-s].
    std::set<unsigned> Ps{0}, Ss{0};
    for (const auto &[P, S] : List) {
      Ps.insert(P);
      Ss.insert(S);
    }
    for (unsigned P : Ps)
      for (unsigned S : Ss) {
        unsigned Count = 0;
        for (const auto &[P2, S2] : List)
          if (P2 >= P && S2 >= S)
            ++Count;
        if (Count)
          Bound = std::max(Bound, Count + P + S);
      }
  }
  return Bound;
}

ScheduleStats scg::computeScheduleStats(const SuperCayleyGraph &Net,
                                        const AllPortSchedule &Schedule) {
  ScheduleStats Stats;
  std::vector<unsigned> PerStep(Schedule.Makespan + 1, 0);
  for (const DimensionSchedule &DS : Schedule.Dimensions)
    for (const ScheduledHop &Hop : DS.Hops) {
      ++Stats.Transmissions;
      ++PerStep[Hop.Time];
    }
  Stats.Slots = uint64_t(Net.degree()) * Schedule.Makespan;
  Stats.AverageUtilization =
      Stats.Slots ? double(Stats.Transmissions) / double(Stats.Slots) : 0.0;
  for (unsigned T = 1; T <= Schedule.Makespan; ++T)
    if (PerStep[T] == Net.degree())
      ++Stats.FullyUsedSteps;
  return Stats;
}
