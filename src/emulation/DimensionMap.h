//===- emulation/DimensionMap.h - Star dimension decomposition -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dimension arithmetic every emulation theorem shares: star dimension
/// j in 2..k of an (ln+1)-star decomposes as
///   j0 = (j - 2) mod n      (which ball within the box)
///   j1 = floor((j - 2) / n) (which box, 0 = the leftmost box)
/// so that j = j1 * n + j0 + 2. Dimension j touches box j1 + 1 and, once
/// that box is leftmost, nucleus dimension j0 + 2.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMULATION_DIMENSIONMAP_H
#define SCG_EMULATION_DIMENSIONMAP_H

namespace scg {

/// Decomposition of a star dimension relative to boxes of size n.
struct DimensionParts {
  unsigned J0; ///< (j - 2) mod n: ball slot within the box.
  unsigned J1; ///< floor((j - 2) / n): box index minus one (0 = leftmost).
};

/// Decomposes star dimension \p J (2 <= J <= ln+1) for box size \p N.
DimensionParts decomposeDimension(unsigned J, unsigned N);

/// Recomposes: returns j1 * n + j0 + 2.
unsigned composeDimension(DimensionParts Parts, unsigned N);

} // namespace scg

#endif // SCG_EMULATION_DIMENSIONMAP_H
