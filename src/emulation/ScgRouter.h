//===- emulation/ScgRouter.h - Emulation-based unicast routing -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unicast routing in super Cayley graphs by star-route lifting: compute an
/// optimal route in the (ln+1)-star (StarRouter) and expand every star
/// dimension through its emulation path (Theorems 1-3). This is the
/// "routing = solving the ball-arrangement game" reading of Section 2: the
/// resulting path length is at most slowdown * starDistance, within the
/// per-network constant of optimal. For networks without a transposition
/// template (the rotator classes) the exact BFS solver is the fallback.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_EMULATION_SCGROUTER_H
#define SCG_EMULATION_SCGROUTER_H

#include "routing/Path.h"

namespace scg {

/// Routes \p Src -> \p Dst in \p Net by star-route lifting; requires
/// supportsStarEmulation(Net).
GeneratorPath routeViaStarEmulation(const SuperCayleyGraph &Net,
                                    const Permutation &Src,
                                    const Permutation &Dst);

/// Upper bound on the length of routeViaStarEmulation paths:
/// slowdown * starDiameter (for reporting against measured diameters).
unsigned liftedRouteBound(const SuperCayleyGraph &Net);

} // namespace scg

#endif // SCG_EMULATION_SCGROUTER_H
