//===- emulation/DimensionMap.cpp - Star dimension decomposition ---------===//

#include "emulation/DimensionMap.h"

#include <cassert>

using namespace scg;

DimensionParts scg::decomposeDimension(unsigned J, unsigned N) {
  assert(J >= 2 && N >= 1 && "dimension must be >= 2");
  return {(J - 2) % N, (J - 2) / N};
}

unsigned scg::composeDimension(DimensionParts Parts, unsigned N) {
  assert(Parts.J0 < N && "ball slot out of range");
  return Parts.J1 * N + Parts.J0 + 2;
}
