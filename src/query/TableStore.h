//===- query/TableStore.h - mmap-able exact distance tables ----*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialized exact distance tables for the query layer. A table holds the
/// single-source distance row from the identity node, one byte per Lehmer
/// rank: by vertex transitivity d(U, V) = d(id, U^-1 o V), so this one row
/// answers every exact distance query -- and, by greedy descent, every
/// exact shortest-route query -- for the whole k!-node network. At k = 10
/// that is a 3.6 MB file standing in for a graph of 3.6M nodes.
///
/// The on-disk format is a fixed little-endian header (magic, version, an
/// endianness probe, the network descriptor, node count, FNV-1a payload
/// checksum) followed by the raw byte row. Files are loaded read-only via
/// mmap, so any number of serving processes share one physical copy of the
/// table; a build-side writer process and a serving reader never need to
/// be the same binary. The loader validates everything before the first
/// query: wrong magic, foreign endianness, version skew, size mismatch
/// (truncation), and checksum failure (bit rot) all raise TableStoreError
/// with a message naming the failed check -- never undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_QUERY_TABLESTORE_H
#define SCG_QUERY_TABLESTORE_H

#include "core/SuperCayleyGraph.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace scg {

/// Raised by TableStore::load / save on any I/O or validation failure.
class TableStoreError : public std::runtime_error {
public:
  explicit TableStoreError(const std::string &What)
      : std::runtime_error(What) {}
};

/// Distance value byte marking "no path" in a table row (matches
/// MsBfsUnreachableByte; redeclared here so the file format is
/// self-contained).
constexpr uint8_t TableUnreachable = 0xFF;

/// An exact distance table for one network descriptor, either built
/// in-process or mmap-ed read-only from a serialized file. Movable, not
/// copyable (a loaded instance owns an mmap region).
class TableStore {
public:
  /// Builds the table for \p Net in memory via the MS-BFS engine
  /// (identity-row sweep over the ExplicitScg CSR). Enumerates k! nodes:
  /// same k <= 10 limit as ExplicitScg.
  static TableStore build(const SuperCayleyGraph &Net);

  /// Wraps an externally computed distance row (e.g. one produced over a
  /// faulted graph) for \p Net. \p Row must have Net.numNodes() entries.
  static TableStore fromRow(const SuperCayleyGraph &Net,
                            std::vector<uint8_t> Row);

  /// Loads \p Path read-only via mmap, validating the header and payload
  /// checksum. Throws TableStoreError naming the failed check.
  static TableStore load(const std::string &Path);

  /// Serializes this table to \p Path (header + row + checksum).
  /// Throws TableStoreError on I/O failure.
  void save(const std::string &Path) const;

  TableStore(TableStore &&Rhs) noexcept { moveFrom(Rhs); }
  TableStore &operator=(TableStore &&Rhs) noexcept;
  TableStore(const TableStore &) = delete;
  TableStore &operator=(const TableStore &) = delete;
  ~TableStore();

  /// The network kind / parameters the table was built for.
  NetworkKind kind() const { return Kind; }
  unsigned numBoxes() const { return L; }
  unsigned ballsPerBox() const { return N; }
  unsigned numSymbols() const { return K; }
  uint64_t numNodes() const { return Count; }

  /// True when this table answers for \p Net (same kind and parameters).
  bool covers(const SuperCayleyGraph &Net) const {
    return Net.kind() == Kind && Net.numBoxes() == L &&
           Net.ballsPerBox() == N && Net.numSymbols() == K;
  }

  /// d(id, unrank(Rank)) as a byte; TableUnreachable when no path.
  uint8_t distanceByRank(uint64_t Rank) const {
    assert(Rank < Count && "rank out of table range");
    return Row[Rank];
  }

  /// Whether this instance serves from an mmap-ed file (vs in-memory).
  bool isMapped() const { return Mapped != nullptr; }

private:
  TableStore() = default;
  void moveFrom(TableStore &Rhs) noexcept;
  void unmap() noexcept;

  NetworkKind Kind = NetworkKind::Star;
  unsigned L = 0, N = 0, K = 0;
  uint64_t Count = 0;
  const uint8_t *Row = nullptr; ///< the distance row (Count bytes).
  std::vector<uint8_t> Owned;   ///< backing store when built in memory.
  void *Mapped = nullptr;       ///< mmap base when loaded from a file.
  size_t MappedSize = 0;
};

} // namespace scg

#endif // SCG_QUERY_TABLESTORE_H
