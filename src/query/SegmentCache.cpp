//===- query/SegmentCache.cpp - Sharded LRU route-segment cache ----------===//

#include "query/SegmentCache.h"

#include "support/Metrics.h"

#include <bit>

using namespace scg;

SegmentCache::SegmentCache(size_t Capacity, unsigned NumShards) {
  unsigned Count = std::bit_ceil(std::max(1u, NumShards));
  TotalCapacity = Capacity;
  PerShardCapacity = std::max<size_t>(1, (Capacity + Count - 1) / Count);
  ShardMask = Count - 1;
  Shards.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

bool SegmentCache::lookup(const Permutation &Rel, std::vector<GenIndex> &Hops) {
  if (!enabled())
    return false;
  Key K = keyOf(Rel);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(K);
  if (It == S.Map.end()) {
    ++S.Stats.Misses;
    return false;
  }
  ++S.Stats.Hits;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // refresh to front.
  Hops = It->second->Hops;
  return true;
}

void SegmentCache::insert(const Permutation &Rel,
                          const std::vector<GenIndex> &Hops) {
  if (!enabled())
    return;
  Key K = keyOf(Rel);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Another thread won the race to compute this key; values are pure
    // functions of the key, so just refresh recency.
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  if (S.Map.size() >= PerShardCapacity) {
    S.Map.erase(S.Lru.back().K);
    S.Lru.pop_back();
    ++S.Stats.Evictions;
  }
  S.Lru.push_front(Entry{K, Hops});
  S.Map.emplace(K, S.Lru.begin());
  ++S.Stats.Insertions;
}

size_t SegmentCache::size() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    Total += S->Map.size();
  }
  return Total;
}

SegmentCacheStats SegmentCache::totals() const {
  SegmentCacheStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    Total.Hits += S->Stats.Hits;
    Total.Misses += S->Stats.Misses;
    Total.Insertions += S->Stats.Insertions;
    Total.Evictions += S->Stats.Evictions;
  }
  return Total;
}

SegmentCacheStats SegmentCache::shardStats(unsigned Shard) const {
  assert(Shard < Shards.size() && "shard index out of range");
  std::lock_guard<std::mutex> Lock(Shards[Shard]->Mu);
  return Shards[Shard]->Stats;
}

void SegmentCache::publish(MetricsRegistry &M) const {
  SegmentCacheStats Total = totals();
  M.counter("query.cache.hits").set(double(Total.Hits));
  M.counter("query.cache.misses").set(double(Total.Misses));
  M.counter("query.cache.insertions").set(double(Total.Insertions));
  M.counter("query.cache.evictions").set(double(Total.Evictions));
  M.counter("query.cache.entries").set(double(size()));
  M.gauge("query.cache.hit_rate").set(Total.hitRate());
  for (unsigned I = 0; I != Shards.size(); ++I)
    M.gauge("query.cache.shard" + std::to_string(I) + ".hit_rate")
        .set(shardStats(I).hitRate());
}

void SegmentCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mu);
    S->Map.clear();
    S->Lru.clear();
  }
}
