//===- query/QueryEngine.h - Table-free batched route serving --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routing-as-a-service: answers distance and route queries for star
/// graphs and super Cayley graphs WITHOUT constructing the k! graph.
/// Every analysis engine in this repository materializes adjacency; the
/// paper's point is that routing is computable locally from the
/// permutation label in O(k) -- which is the only thing that scales to
/// k where the graph cannot exist in memory.
///
/// Cayley symmetry does the heavy lifting: route and distance from U to V
/// depend only on the relative label R = U^-1 o V (left translation is an
/// automorphism), so the engine normalizes every pair to R and serves
/// from rank space:
///
///  * Table-free (any k <= 16): O(k) greedy rank-space routing on the
///    inline-label Permutation kernels -- exact optimal star routing
///    (send-the-front-symbol-home), exact bubble-sort routing (adjacent-
///    swap sort, length = inversions), rotator insertion-sort routes, and
///    Theorem 1-3 star-route lifting for the SDC-emulating SCG classes
///    (MS/RS/complete-RS/IS/MIS/RIS/complete-RIS, TN).
///
///  * Table-backed (k <= 10): an attached TableStore -- the identity-row
///    distance table, typically mmap-ed and shared between processes --
///    serves exact distances as one rank + one byte load, and exact
///    shortest routes by greedy distance descent, for every family
///    including the ones with no closed-form router.
///
/// Replies carry (Exact, FromTable) so callers can tell a certified
/// shortest answer from a lifted upper bound. A sharded LRU SegmentCache
/// memoizes hot relative labels; batch entry points spread chunks over
/// the global ThreadPool with results in submission order, so batched
/// parallel answers are byte-identical to serial ones (the cache can only
/// change latency, never an answer). Telemetry flows through
/// MetricsRegistry as `query.*` counters.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_QUERY_QUERYENGINE_H
#define SCG_QUERY_QUERYENGINE_H

#include "query/SegmentCache.h"
#include "query/TableStore.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <span>

namespace scg {

class MetricsRegistry;

/// One source/destination query; labels must be on the engine's k symbols.
struct PairQuery {
  Permutation Src, Dst;
};

/// Reply to a distance query. Distance is UnreachableDistance when a
/// (faulted) table certifies no path.
struct DistanceReply {
  uint32_t Distance = 0;
  bool Exact = false;     ///< certified shortest (closed form or table).
  bool FromTable = false; ///< served from the attached TableStore.
  bool operator==(const DistanceReply &) const = default;
};

/// Reply to a route query: generator indices of a valid route (hop h goes
/// along generators()[Hops[h]]).
struct RouteReply {
  std::vector<GenIndex> Hops;
  bool Exact = false;     ///< certified shortest route.
  bool FromTable = false; ///< derived by table distance descent.
  bool operator==(const RouteReply &) const = default;

  unsigned length() const { return unsigned(Hops.size()); }
};

/// Flat reply to a batched route query: route I occupies
/// Hops[Offsets[I], Offsets[I+1]). One contiguous buffer for the whole
/// batch instead of one std::vector per route, so consumers that retain
/// many routes (the traffic driver keeps one per distinct relative label
/// and lets every injection index into it) hold a single allocation.
struct RouteArena {
  std::vector<GenIndex> Hops;
  std::vector<uint32_t> Offsets; ///< size() + 1 offsets into Hops.

  size_t size() const { return Offsets.empty() ? 0 : Offsets.size() - 1; }

  /// The hops of route \p I as a view into the arena.
  std::span<const GenIndex> route(size_t I) const {
    assert(I + 1 < Offsets.size() && "route index out of range");
    return std::span<const GenIndex>(Hops).subspan(Offsets[I],
                                                   Offsets[I + 1] -
                                                       Offsets[I]);
  }

  unsigned length(size_t I) const {
    assert(I + 1 < Offsets.size() && "route index out of range");
    return Offsets[I + 1] - Offsets[I];
  }
};

/// Engine construction knobs.
struct QueryEngineOptions {
  /// Total SegmentCache entries (0 disables caching).
  size_t CacheCapacity = 1 << 15;
  /// Cache shard count (rounded up to a power of two).
  unsigned CacheShards = 8;
};

/// The serving engine for one network descriptor. Thread-safe for
/// concurrent queries (the cache is internally sharded and the rest of
/// the state is immutable after construction / attachTable).
class QueryEngine {
public:
  /// Builds a table-free engine for \p Net; requires k <= 16 (inline
  /// labels) and a supported family (supportsTableFree) -- attachTable
  /// lifts the family restriction.
  explicit QueryEngine(SuperCayleyGraph Net, QueryEngineOptions Opts = {});

  /// True when the engine can answer without a table: star, bubble-sort,
  /// rotator, and the SDC star-emulating classes.
  static bool supportsTableFree(const SuperCayleyGraph &Net);

  /// Attaches an exact distance table; asserts Table->covers(network()).
  /// Shared ownership so many engines (or processes via mmap) serve from
  /// one table. Not thread-safe against in-flight queries.
  void attachTable(std::shared_ptr<const TableStore> Table);

  bool tableBacked() const { return Table != nullptr; }
  const SuperCayleyGraph &network() const { return Net; }

  /// d(Src, Dst), Cayley-normalized to the relative label.
  DistanceReply distance(const Permutation &Src,
                         const Permutation &Dst) const;

  /// A route Src -> Dst as generator indices; exact shortest when the
  /// reply says so, a valid bounded-slowdown route otherwise.
  RouteReply route(const Permutation &Src, const Permutation &Dst) const;

  /// A route for the relative label \p Rel = Src^-1 o Dst directly -- the
  /// normalization route() performs internally. Vertex-transitive callers
  /// that already dedupe pairs by relative label (the traffic driver's
  /// batched setup) enter here and skip the per-pair inverse + compose.
  RouteReply routeRelative(const Permutation &Rel) const;

  /// Batched routeRelative into one flat arena: chunked over the global
  /// ThreadPool (chunk boundaries depend only on the batch length), routes
  /// indexed like \p Rels and byte-identical at every thread count.
  RouteArena routeBatchRelative(std::span<const Permutation> Rels) const;

  /// Batched forms: chunked over the global ThreadPool (SCG_THREADS=1
  /// forces serial), replies indexed like \p Queries and byte-identical
  /// at every thread count.
  std::vector<DistanceReply>
  distanceBatch(std::span<const PairQuery> Queries) const;
  std::vector<RouteReply> routeBatch(std::span<const PairQuery> Queries) const;

  const SegmentCache &cache() const { return Cache; }
  void clearCache() const { Cache.clear(); }

  /// Publishes `query.{distance,route}.count`, `query.answers.{table,
  /// table_free}` counters plus the cache's `query.cache.*` telemetry.
  void publishMetrics(MetricsRegistry &M) const;

private:
  /// How table-free routes are computed for this family.
  enum class FreeRouter {
    None,       ///< no closed-form router; a table is required.
    StarGreedy, ///< optimal star routing (exact).
    BubbleSort, ///< adjacent-swap sort (exact, length = inversions).
    Rotator,    ///< insertion-sort routing (valid, not optimal).
    Lifted,     ///< Theorem 1-3 star-route lifting (valid, not optimal).
  };

  DistanceReply distanceRel(const Permutation &Rel) const;
  RouteReply routeRel(const Permutation &Rel) const;
  std::vector<GenIndex> computeRouteRel(const Permutation &Rel) const;
  std::vector<GenIndex> tableRouteRel(const Permutation &Rel) const;
  std::vector<GenIndex> freeRouteRel(const Permutation &Rel) const;
  bool routeIsExact(const Permutation &Rel) const;

  SuperCayleyGraph Net;
  std::shared_ptr<const TableStore> Table;
  mutable SegmentCache Cache;
  FreeRouter Router = FreeRouter::None;
  std::vector<Permutation> InvGens; ///< generator inverse actions.
  /// Star/rotator dimension -> generator index (index 0..k, dims 2-based;
  /// bubble-sort uses positions 1..k-1).
  std::vector<GenIndex> DimToGen;
  /// Lifted engines: per star dimension, the Theorem 1-3 template word.
  std::vector<std::vector<GenIndex>> DimTemplates;

  mutable std::atomic<uint64_t> DistanceQueries{0};
  mutable std::atomic<uint64_t> RouteQueries{0};
  mutable std::atomic<uint64_t> TableAnswers{0};
  mutable std::atomic<uint64_t> TableFreeAnswers{0};
};

} // namespace scg

#endif // SCG_QUERY_QUERYENGINE_H
