//===- query/SegmentCache.h - Sharded LRU route-segment cache --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded LRU memo cache for computed route segments, keyed by the
/// relative permutation Src^-1 o Dst (Cayley symmetry makes the route a
/// pure function of that relative label, so one cached segment serves
/// every source/destination pair with the same offset -- hot traffic
/// patterns like transpose or hotspot workloads collapse onto a handful
/// of keys). Keys are the label's two zero-padded inline words, unique
/// for the fixed k <= 16 an engine serves.
///
/// Shards are independent LRU maps behind their own mutexes, selected by
/// key hash, so concurrent batch serving contends only 1/shards of the
/// time. Because a cached value is a pure function of its key, cache
/// state can never change an answer -- only latency -- which is what
/// keeps batched parallel serving byte-identical to serial. Each shard
/// counts hits / misses / insertions / evictions; per-shard and aggregate
/// hit rates flow into MetricsRegistry as `query.cache.*`.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_QUERY_SEGMENTCACHE_H
#define SCG_QUERY_SEGMENTCACHE_H

#include "core/GeneratorSet.h"
#include "perm/Permutation.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace scg {

class MetricsRegistry;

/// Aggregated (or per-shard) cache telemetry.
struct SegmentCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;

  /// Hits / lookups, 0 when no lookups happened.
  double hitRate() const {
    uint64_t Lookups = Hits + Misses;
    return Lookups ? double(Hits) / double(Lookups) : 0.0;
  }
};

/// Sharded LRU cache: relative permutation -> generator-index route.
class SegmentCache {
public:
  /// \p Capacity total entries spread across \p Shards shards (shard count
  /// rounded up to a power of two; capacity at least one per shard).
  /// Capacity 0 disables the cache: lookups miss, inserts drop.
  SegmentCache(size_t Capacity, unsigned Shards);

  /// Copies the cached route for \p Rel into \p Hops and returns true, or
  /// returns false (counting a miss). A hit refreshes LRU position.
  bool lookup(const Permutation &Rel, std::vector<GenIndex> &Hops);

  /// Inserts (or refreshes) the route for \p Rel, evicting the shard's
  /// least-recently-used entry when full.
  void insert(const Permutation &Rel, const std::vector<GenIndex> &Hops);

  unsigned numShards() const { return unsigned(Shards.size()); }
  size_t capacity() const { return TotalCapacity; }
  bool enabled() const { return TotalCapacity != 0; }

  /// Entries currently cached (sums shard sizes; takes every shard lock).
  size_t size() const;

  SegmentCacheStats totals() const;
  SegmentCacheStats shardStats(unsigned Shard) const;

  /// Publishes `query.cache.{hits,misses,insertions,evictions,entries}`
  /// counters, a `query.cache.hit_rate` gauge, and per-shard
  /// `query.cache.shard<i>.hit_rate` gauges into \p M.
  void publish(MetricsRegistry &M) const;

  /// Drops every entry (stats are kept).
  void clear();

private:
  struct Key {
    uint64_t Lo, Hi;
    bool operator==(const Key &) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = K.Lo * 0x9e3779b97f4a7c15ULL;
      H ^= K.Hi + 0xbf58476d1ce4e5b9ULL + (H << 6) + (H >> 2);
      H ^= H >> 29;
      H *= 0x94d049bb133111ebULL;
      return size_t(H ^ (H >> 32));
    }
  };
  struct Entry {
    Key K;
    std::vector<GenIndex> Hops;
  };
  struct Shard {
    mutable std::mutex Mu;
    std::list<Entry> Lru; ///< front = most recently used.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> Map;
    SegmentCacheStats Stats;
  };

  static Key keyOf(const Permutation &Rel) {
    assert(Rel.isInline() && "cache keys require inline labels (k <= 16)");
    return {Rel.loWord(), Rel.hiWord()};
  }
  Shard &shardFor(const Key &K) {
    // Bits 32.. select the shard; the map's bucket index uses the low
    // bits, so the two stay independent.
    return *Shards[(KeyHash{}(K) >> 32) & ShardMask];
  }

  size_t TotalCapacity;
  size_t PerShardCapacity;
  size_t ShardMask; ///< shard count - 1 (power of two).
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace scg

#endif // SCG_QUERY_SEGMENTCACHE_H
