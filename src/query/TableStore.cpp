//===- query/TableStore.cpp - mmap-able exact distance tables ------------===//

#include "query/TableStore.h"

#include "graph/MsBfs.h"
#include "networks/Explicit.h"
#include "perm/Lehmer.h"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace scg;

namespace {

//===----------------------------------------------------------------------===//
// On-disk format (little-endian, fixed 56-byte header):
//   0  char[8]  magic "SCGTBL01"
//   8  u32      endian probe 0x01020304 (reads back swapped on a
//               foreign-endian host -> rejected)
//  12  u32      format version (1)
//  16  u32      network kind (NetworkKind as integer)
//  20  u32      boxes l
//  24  u32      balls per box n
//  28  u32      symbols k (= l*n + 1)
//  32  u64      node count (= k!)
//  40  u64      FNV-1a 64 checksum of the payload bytes
//  48  u64      reserved (0)
//  56  u8[node count] distance row, 0xFF = unreachable
//===----------------------------------------------------------------------===//

constexpr char Magic[8] = {'S', 'C', 'G', 'T', 'B', 'L', '0', '1'};
constexpr uint32_t EndianProbe = 0x01020304;
constexpr uint32_t FormatVersion = 1;

struct Header {
  char Magic[8];
  uint32_t Endian;
  uint32_t Version;
  uint32_t Kind;
  uint32_t L;
  uint32_t N;
  uint32_t K;
  uint64_t Count;
  uint64_t Checksum;
  uint64_t Reserved;
};
static_assert(sizeof(Header) == 56, "header layout is part of the format");

uint64_t fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t H = 1469598103934665603ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ULL;
  }
  return H;
}

[[noreturn]] void fail(const std::string &Path, const std::string &What) {
  throw TableStoreError("TableStore " + Path + ": " + What);
}

} // namespace

TableStore TableStore::build(const SuperCayleyGraph &Net) {
  Csr G = ExplicitScg(Net).toCsr();
  return fromRow(Net, msBfsDistanceRow(G, /*Source=*/0));
}

TableStore TableStore::fromRow(const SuperCayleyGraph &Net,
                               std::vector<uint8_t> Row) {
  assert(Row.size() == Net.numNodes() && "row length must be k!");
  TableStore T;
  T.Kind = Net.kind();
  T.L = Net.numBoxes();
  T.N = Net.ballsPerBox();
  T.K = Net.numSymbols();
  T.Count = Row.size();
  T.Owned = std::move(Row);
  T.Row = T.Owned.data();
  return T;
}

void TableStore::save(const std::string &Path) const {
  Header H = {};
  std::memcpy(H.Magic, Magic, sizeof(Magic));
  H.Endian = EndianProbe;
  H.Version = FormatVersion;
  H.Kind = uint32_t(Kind);
  H.L = L;
  H.N = N;
  H.K = K;
  H.Count = Count;
  H.Checksum = fnv1a(Row, size_t(Count));
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    fail(Path, "cannot open for writing");
  auto WriteAll = [&](const void *Data, size_t Size) {
    const char *P = static_cast<const char *>(Data);
    while (Size) {
      ssize_t W = ::write(Fd, P, Size);
      if (W <= 0) {
        ::close(Fd);
        fail(Path, "short write");
      }
      P += W;
      Size -= size_t(W);
    }
  };
  WriteAll(&H, sizeof(H));
  WriteAll(Row, size_t(Count));
  if (::close(Fd) != 0)
    fail(Path, "close failed");
}

TableStore TableStore::load(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    fail(Path, "cannot open for reading");
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    ::close(Fd);
    fail(Path, "stat failed");
  }
  size_t Size = size_t(St.st_size);
  if (Size < sizeof(Header)) {
    ::close(Fd);
    fail(Path, "truncated: file smaller than the header");
  }
  void *Base = ::mmap(nullptr, Size, PROT_READ, MAP_SHARED, Fd, 0);
  ::close(Fd); // the mapping keeps the file alive.
  if (Base == MAP_FAILED)
    fail(Path, "mmap failed");

  // Validate before serving a single byte; unmap on any rejection.
  Header H;
  std::memcpy(&H, Base, sizeof(H));
  auto Reject = [&](const std::string &What) {
    ::munmap(Base, Size);
    fail(Path, What);
  };
  if (std::memcmp(H.Magic, Magic, sizeof(Magic)) != 0)
    Reject("bad magic (not a table file)");
  if (H.Endian != EndianProbe)
    Reject(H.Endian == 0x04030201
               ? "foreign-endian file (written on an incompatible host)"
               : "corrupt endianness probe");
  if (H.Version != FormatVersion)
    Reject("unsupported format version " + std::to_string(H.Version));
  if (H.K == 0 || H.K > 20 || H.Count != factorial(H.K))
    Reject("corrupt header: node count does not match k!");
  if (H.L * H.N + 1 != H.K)
    Reject("corrupt header: k != l*n + 1");
  if (Size != sizeof(Header) + H.Count)
    Reject(Size < sizeof(Header) + H.Count ? "truncated payload"
                                           : "trailing garbage after payload");
  const uint8_t *Payload =
      static_cast<const uint8_t *>(Base) + sizeof(Header);
  if (fnv1a(Payload, size_t(H.Count)) != H.Checksum)
    Reject("payload checksum mismatch (corrupt file)");

  TableStore T;
  T.Kind = NetworkKind(H.Kind);
  T.L = H.L;
  T.N = H.N;
  T.K = H.K;
  T.Count = H.Count;
  T.Row = Payload;
  T.Mapped = Base;
  T.MappedSize = Size;
  return T;
}

void TableStore::moveFrom(TableStore &Rhs) noexcept {
  Kind = Rhs.Kind;
  L = Rhs.L;
  N = Rhs.N;
  K = Rhs.K;
  Count = Rhs.Count;
  Owned = std::move(Rhs.Owned);
  Mapped = Rhs.Mapped;
  MappedSize = Rhs.MappedSize;
  Row = Mapped ? static_cast<const uint8_t *>(Mapped) + sizeof(Header)
               : Owned.data();
  Rhs.Mapped = nullptr;
  Rhs.MappedSize = 0;
  Rhs.Row = nullptr;
  Rhs.Count = 0;
}

TableStore &TableStore::operator=(TableStore &&Rhs) noexcept {
  if (this != &Rhs) {
    unmap();
    moveFrom(Rhs);
  }
  return *this;
}

void TableStore::unmap() noexcept {
  if (Mapped) {
    ::munmap(Mapped, MappedSize);
    Mapped = nullptr;
    MappedSize = 0;
  }
}

TableStore::~TableStore() { unmap(); }
