//===- query/QueryEngine.cpp - Table-free batched route serving ----------===//

#include "query/QueryEngine.h"

#include "emulation/SdcEmulation.h"
#include "graph/Bfs.h"
#include "perm/Lehmer.h"
#include "routing/RotatorRouter.h"
#include "routing/StarRouter.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace scg;

namespace {

/// Finds the link of \p Net matching generator \p G, asserting presence
/// (the factories below only produce generators the family defines).
GenIndex requireLink(const SuperCayleyGraph &Net, const Generator &G) {
  std::optional<GenIndex> Index = Net.generators().findLink(G);
  assert(Index && "family generator is not a link of this network");
  return *Index;
}

/// Number of inversions of \p P: the exact bubble-sort-graph distance
/// (Coxeter length in the adjacent-transposition generators).
unsigned inversionCount(const Permutation &P) {
  unsigned Inv = 0;
  for (unsigned I = 0; I + 1 < P.size(); ++I)
    for (unsigned J = I + 1; J != P.size(); ++J)
      Inv += P[I] > P[J];
  return Inv;
}

} // namespace

bool QueryEngine::supportsTableFree(const SuperCayleyGraph &Net) {
  switch (Net.kind()) {
  case NetworkKind::BubbleSort:
  case NetworkKind::Rotator:
    return true;
  default:
    return supportsStarEmulation(Net);
  }
}

QueryEngine::QueryEngine(SuperCayleyGraph Network, QueryEngineOptions Opts)
    : Net(std::move(Network)), Cache(Opts.CacheCapacity, Opts.CacheShards) {
  unsigned K = Net.numSymbols();
  assert(K <= Permutation::InlineCapacity &&
         "the query engine serves the inline-label regime (k <= 16)");
  InvGens.reserve(Net.generators().size());
  for (const Generator &G : Net.generators())
    InvGens.push_back(G.Sigma.inverse());

  switch (Net.kind()) {
  case NetworkKind::Star:
    Router = FreeRouter::StarGreedy;
    DimToGen.assign(K + 1, 0);
    for (unsigned J = 2; J <= K; ++J)
      DimToGen[J] = requireLink(Net, makeTransposition(K, J));
    break;
  case NetworkKind::BubbleSort:
    Router = FreeRouter::BubbleSort;
    DimToGen.assign(K, 0); // indexed by position 1..k-1.
    for (unsigned I = 1; I != K; ++I)
      DimToGen[I] = requireLink(Net, makeAdjacentTransposition(K, I));
    break;
  case NetworkKind::Rotator:
    Router = FreeRouter::Rotator;
    DimToGen.assign(K + 1, 0);
    for (unsigned J = 2; J <= K; ++J)
      DimToGen[J] = requireLink(Net, makeInsertion(K, J));
    break;
  default:
    if (supportsStarEmulation(Net)) {
      // Theorems 1-3: a fixed generator word per star dimension whose net
      // effect is T_j; lifting a star route concatenates the templates.
      Router = FreeRouter::Lifted;
      DimTemplates.resize(K + 1);
      for (unsigned J = 2; J <= K; ++J)
        DimTemplates[J] = starDimensionPath(Net, J).hops();
    } else {
      Router = FreeRouter::None; // table-only family (MR/RR/...).
    }
    break;
  }
}

void QueryEngine::attachTable(std::shared_ptr<const TableStore> NewTable) {
  assert(NewTable && NewTable->covers(Net) &&
         "table does not describe this network");
  Table = std::move(NewTable);
  // Cached routes were computed under the previous configuration; drop them
  // so every key's (Hops, Exact, FromTable) stays a pure function of the
  // current one.
  Cache.clear();
}

//===----------------------------------------------------------------------===//
// Serving: everything funnels through the relative label Rel = Src^-1 o Dst.
//===----------------------------------------------------------------------===//

DistanceReply QueryEngine::distance(const Permutation &Src,
                                    const Permutation &Dst) const {
  assert(Src.size() == Net.numSymbols() && Dst.size() == Net.numSymbols() &&
         "query labels must be on the engine's k symbols");
  DistanceQueries.fetch_add(1, std::memory_order_relaxed);
  return distanceRel(Src.inverse().compose(Dst));
}

RouteReply QueryEngine::route(const Permutation &Src,
                              const Permutation &Dst) const {
  assert(Src.size() == Net.numSymbols() && Dst.size() == Net.numSymbols() &&
         "query labels must be on the engine's k symbols");
  RouteQueries.fetch_add(1, std::memory_order_relaxed);
  return routeRel(Src.inverse().compose(Dst));
}

DistanceReply QueryEngine::distanceRel(const Permutation &Rel) const {
  if (Rel.isIdentity()) {
    TableFreeAnswers.fetch_add(1, std::memory_order_relaxed);
    return {0, /*Exact=*/true, /*FromTable=*/false};
  }
  if (Table) {
    TableAnswers.fetch_add(1, std::memory_order_relaxed);
    uint8_t B = Table->distanceByRank(rankPermutation(Rel));
    uint32_t D = B == TableUnreachable ? UnreachableDistance : uint32_t(B);
    return {D, /*Exact=*/true, /*FromTable=*/true};
  }
  switch (Router) {
  case FreeRouter::StarGreedy:
    TableFreeAnswers.fetch_add(1, std::memory_order_relaxed);
    return {starDistance(Rel), /*Exact=*/true, /*FromTable=*/false};
  case FreeRouter::BubbleSort:
    TableFreeAnswers.fetch_add(1, std::memory_order_relaxed);
    return {inversionCount(Rel), /*Exact=*/true, /*FromTable=*/false};
  case FreeRouter::Rotator:
  case FreeRouter::Lifted: {
    // No closed-form distance: the route length is a certified upper bound.
    RouteReply R = routeRel(Rel);
    return {R.length(), /*Exact=*/false, /*FromTable=*/false};
  }
  case FreeRouter::None:
    break;
  }
  assert(false && "family needs a table; attachTable() first");
  return {UnreachableDistance, false, false};
}

RouteReply QueryEngine::routeRel(const Permutation &Rel) const {
  RouteReply Reply;
  if (Rel.isIdentity()) {
    TableFreeAnswers.fetch_add(1, std::memory_order_relaxed);
    Reply.Exact = true;
    return Reply;
  }
  if (!Cache.lookup(Rel, Reply.Hops)) {
    Reply.Hops = computeRouteRel(Rel);
    Cache.insert(Rel, Reply.Hops);
  }
  // Flags are recomputed (never cached): each is a pure function of the key
  // and the engine configuration, so hit and miss replies stay identical.
  Reply.FromTable =
      Table && Reply.Hops.size() ==
                   size_t(Table->distanceByRank(rankPermutation(Rel)));
  Reply.Exact = Reply.FromTable || Router == FreeRouter::StarGreedy ||
                Router == FreeRouter::BubbleSort;
  (Reply.FromTable ? TableAnswers : TableFreeAnswers)
      .fetch_add(1, std::memory_order_relaxed);
  return Reply;
}

std::vector<GenIndex>
QueryEngine::computeRouteRel(const Permutation &Rel) const {
  if (Table) {
    std::vector<GenIndex> Hops = tableRouteRel(Rel);
    if (!Hops.empty())
      return Hops;
    // Descent failed (a faulted-graph table can leave the target
    // unreachable or strand the greedy walk): serve a closed-form route
    // over the unfaulted network when the family has one.
  }
  assert(Router != FreeRouter::None &&
         "family needs a usable table; attachTable() first");
  return freeRouteRel(Rel);
}

/// Exact shortest route by greedy descent on the table: from remaining
/// relative R at distance D, the first generator g with
/// d(id, g^-1 o R) == D - 1 extends a shortest path (one exists by the BFS
/// property; "first" makes the choice deterministic).
std::vector<GenIndex>
QueryEngine::tableRouteRel(const Permutation &Rel) const {
  std::vector<GenIndex> Hops;
  uint8_t D = Table->distanceByRank(rankPermutation(Rel));
  if (D == TableUnreachable)
    return Hops;
  Hops.reserve(D);
  Permutation R = Rel, Next;
  while (!R.isIdentity()) {
    bool Stepped = false;
    for (GenIndex G = 0; G != InvGens.size(); ++G) {
      InvGens[G].composeInto(R, Next); // R after hopping along G.
      if (Table->distanceByRank(rankPermutation(Next)) == uint8_t(D - 1)) {
        Hops.push_back(G);
        R = Next;
        --D;
        Stepped = true;
        break;
      }
    }
    if (!Stepped) {
      // Inconsistent with Net (e.g. a faulted-graph row): report failure
      // and let the caller fall back.
      Hops.clear();
      return Hops;
    }
  }
  return Hops;
}

std::vector<GenIndex>
QueryEngine::freeRouteRel(const Permutation &Rel) const {
  std::vector<GenIndex> Hops;
  switch (Router) {
  case FreeRouter::StarGreedy: {
    // T_{j1} o ... o T_{jm} = Rel, m minimal (Akers-Krishnamurthy).
    for (unsigned J : starWordForPermutation(Rel))
      Hops.push_back(DimToGen[J]);
    return Hops;
  }
  case FreeRouter::BubbleSort: {
    // Bubble-sort the one-line word; each adjacent swap of an inversion is
    // a right-composition with A_i, so Rel o A_{i1} o ... o A_{im} = id and
    // Rel = A_{im} o ... o A_{i1}: emit the swaps in reverse. m is the
    // inversion count, the exact distance.
    std::vector<uint8_t> W = Rel.oneLineVector();
    std::vector<unsigned> Swaps;
    for (bool Swapped = true; Swapped;) {
      Swapped = false;
      for (unsigned I = 0; I + 1 < W.size(); ++I)
        if (W[I] > W[I + 1]) {
          std::swap(W[I], W[I + 1]);
          Swaps.push_back(I + 1);
          Swapped = true;
        }
    }
    for (auto It = Swaps.rbegin(); It != Swaps.rend(); ++It)
      Hops.push_back(DimToGen[*It]);
    return Hops;
  }
  case FreeRouter::Rotator: {
    // I_{i1} o I_{i2} o ... = Rel (insertion sort; valid, not optimal).
    for (unsigned J : rotatorWordForPermutation(Rel))
      Hops.push_back(DimToGen[J]);
    return Hops;
  }
  case FreeRouter::Lifted: {
    // Lift the shortest star route through the Theorems 1-3 templates.
    for (unsigned J : starWordForPermutation(Rel))
      Hops.insert(Hops.end(), DimTemplates[J].begin(), DimTemplates[J].end());
    return Hops;
  }
  case FreeRouter::None:
    break;
  }
  assert(false && "no table-free router for this family");
  return Hops;
}

//===----------------------------------------------------------------------===//
// Batch serving.
//===----------------------------------------------------------------------===//

std::vector<DistanceReply>
QueryEngine::distanceBatch(std::span<const PairQuery> Queries) const {
  std::vector<DistanceReply> Replies(Queries.size());
  ThreadPool::global().parallelFor(0, Queries.size(), [&](uint64_t I) {
    Replies[I] = distance(Queries[I].Src, Queries[I].Dst);
  });
  return Replies;
}

std::vector<RouteReply>
QueryEngine::routeBatch(std::span<const PairQuery> Queries) const {
  std::vector<RouteReply> Replies(Queries.size());
  ThreadPool::global().parallelFor(0, Queries.size(), [&](uint64_t I) {
    Replies[I] = route(Queries[I].Src, Queries[I].Dst);
  });
  return Replies;
}

RouteReply QueryEngine::routeRelative(const Permutation &Rel) const {
  assert(Rel.size() == Net.numSymbols() &&
         "relative label must be on the engine's k symbols");
  RouteQueries.fetch_add(1, std::memory_order_relaxed);
  return routeRel(Rel);
}

RouteArena
QueryEngine::routeBatchRelative(std::span<const Permutation> Rels) const {
  const uint64_t N = Rels.size();
  RouteQueries.fetch_add(N, std::memory_order_relaxed);
  RouteArena Out;
  Out.Offsets.push_back(0);
  if (N == 0)
    return Out;

  // Per-chunk arenas stitched in chunk-index order: chunk boundaries are a
  // function of N only (never the thread count), so the arena is
  // byte-identical at every SCG_THREADS setting, and the batch makes
  // O(chunks) transient allocations instead of O(N) route vectors.
  const uint64_t Chunk = ThreadPool::defaultChunkSize(N);
  const uint64_t NumChunks = (N + Chunk - 1) / Chunk;
  std::vector<RouteArena> Parts(NumChunks);
  ThreadPool::global().parallelForChunks(
      0, N, Chunk, [&](uint64_t B, uint64_t E) {
        RouteArena &P = Parts[B / Chunk];
        P.Offsets.reserve(E - B + 1);
        P.Offsets.push_back(0);
        for (uint64_t I = B; I != E; ++I) {
          assert(Rels[I].size() == Net.numSymbols() &&
                 "relative label must be on the engine's k symbols");
          RouteReply R = routeRel(Rels[I]);
          P.Hops.insert(P.Hops.end(), R.Hops.begin(), R.Hops.end());
          P.Offsets.push_back(uint32_t(P.Hops.size()));
        }
      });

  size_t TotalHops = 0;
  for (const RouteArena &P : Parts)
    TotalHops += P.Hops.size();
  Out.Hops.reserve(TotalHops);
  Out.Offsets.reserve(N + 1);
  for (const RouteArena &P : Parts) {
    uint32_t Base = uint32_t(Out.Hops.size());
    Out.Hops.insert(Out.Hops.end(), P.Hops.begin(), P.Hops.end());
    for (size_t I = 1; I < P.Offsets.size(); ++I)
      Out.Offsets.push_back(Base + P.Offsets[I]);
  }
  return Out;
}

void QueryEngine::publishMetrics(MetricsRegistry &M) const {
  M.counter("query.distance.count")
      .set(double(DistanceQueries.load(std::memory_order_relaxed)));
  M.counter("query.route.count")
      .set(double(RouteQueries.load(std::memory_order_relaxed)));
  M.counter("query.answers.table")
      .set(double(TableAnswers.load(std::memory_order_relaxed)));
  M.counter("query.answers.table_free")
      .set(double(TableFreeAnswers.load(std::memory_order_relaxed)));
  Cache.publish(M);
}
