//===- support/Metrics.h - Named counters, gauges, time series -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics facility shared by the instrumented runtime surfaces: a
/// registry of named monotone counters and instantaneous gauges, each with
/// an optional per-step time series, plus summary statistics, deterministic
/// JSON export, and an exact integer histogram for step-profile dumps.
///
/// The registry is deliberately observer-agnostic: the simulator's
/// MetricsObserver (comm/SimObserver.h) feeds it, but anything with a step
/// counter can. Nothing here is thread-safe; one registry per simulation.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_METRICS_H
#define SCG_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scg {

/// One named metric. Counters grow monotonically via add(); gauges are
/// overwritten via set(). The distinction only affects JSON rendering
/// (counters print as integers) and is fixed at registration time.
class Metric {
public:
  /// Increments a counter by \p Delta.
  void add(uint64_t Delta = 1) { Value += double(Delta); }

  /// Sets a gauge to \p Value.
  void set(double V) { Value = V; }

  double value() const { return Value; }

  /// True for counters (integer-rendered, monotone).
  bool isCounter() const { return Counter; }

  /// The sampled time series: (step, value) pairs in sampling order.
  const std::vector<std::pair<uint64_t, double>> &series() const {
    return Series;
  }

private:
  friend class MetricsRegistry;
  double Value = 0.0;
  bool Counter = true;
  std::vector<std::pair<uint64_t, double>> Series;
};

/// Summary statistics of one metric's time series.
struct MetricSummary {
  size_t Points = 0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double Last = 0.0;
};

/// A registry of named metrics with per-step sampling and JSON export.
/// Metric references stay valid for the registry's lifetime (node-based
/// storage), so hot loops can hold them instead of re-resolving names.
class MetricsRegistry {
public:
  /// Returns the named counter, creating it at zero on first use.
  Metric &counter(const std::string &Name);

  /// Returns the named gauge, creating it at zero on first use.
  Metric &gauge(const std::string &Name);

  /// Returns the named metric or nullptr.
  const Metric *find(const std::string &Name) const;

  /// Registered names in deterministic (lexicographic) order.
  std::vector<std::string> names() const;

  /// Appends every metric's current value to its time series, tagged with
  /// \p Step. Call once per simulation step.
  void sample(uint64_t Step);

  /// Summary statistics over a metric's sampled series (all zeros when the
  /// series is empty).
  static MetricSummary summarize(const Metric &M);

  /// Renders the registry as one JSON object:
  ///   {"name": {"kind": "counter", "value": v,
  ///             "summary": {...}, "series": [[step, v], ...]}, ...}
  /// Series longer than \p MaxSeriesPoints are downsampled by stride (first
  /// and last points always kept) so exports stay reviewable; pass 0 to
  /// keep every point. Output is deterministic: names are sorted and
  /// values formatted with fixed precision.
  std::string toJson(size_t MaxSeriesPoints = 256) const;

private:
  std::map<std::string, Metric> Metrics;
};

/// Exact integer histogram: bin v counts how often add(v) was called.
/// Suited to small nonnegative step profiles (deliveries per step, queue
/// depths); storage is linear in the largest value seen.
class Histogram {
public:
  void add(uint64_t Value);

  uint64_t total() const { return Total; }
  uint64_t maxValue() const { return Counts.empty() ? 0 : Counts.size() - 1; }
  uint64_t count(uint64_t Value) const {
    return Value < Counts.size() ? Counts[Value] : 0;
  }

  /// ASCII bar rendering, one line per nonempty bin, bars scaled to
  /// \p Width characters, e.g. "  3 | #####  12". Empty histogram renders
  /// to "(empty)\n".
  std::string render(unsigned Width = 40) const;

private:
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace scg

#endif // SCG_SUPPORT_METRICS_H
