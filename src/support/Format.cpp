//===- support/Format.cpp - Small string formatting helpers --------------===//

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <iomanip>

using namespace scg;

std::string scg::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string scg::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string scg::formatDouble(double Value, unsigned Digits) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Digits) << Value;
  return OS.str();
}

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<unsigned> Widths(NumCols, 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max<unsigned>(Widths[I], Row[I].size());
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  std::ostringstream OS;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        OS << "  ";
      OS << padRight(Row[I], Widths[I]);
    }
    OS << '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    unsigned Total = 0;
    for (size_t I = 0; I != NumCols; ++I)
      Total += Widths[I] + (I == 0 ? 0 : 2);
    OS << std::string(Total, '-') << '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return OS.str();
}
