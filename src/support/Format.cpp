//===- support/Format.cpp - Small string formatting helpers --------------===//

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <iomanip>

using namespace scg;

std::string scg::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string scg::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string scg::formatDouble(double Value, unsigned Digits) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Digits) << Value;
  return OS.str();
}

std::string scg::jsonEscaped(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  return Out;
}

void JsonWriter::beginValue(bool Container) {
  if (Stack.empty()) {
    assert(Out.empty() && "a JSON document has exactly one root value");
    (void)Container;
    return;
  }
  if (Container)
    HasContainers.back() = true;
  if (Stack.back() == Scope::Object) {
    assert(KeyPending && "object values need a key() first");
    KeyPending = false;
    return;
  }
  // Array element: scalars pack onto one line, containers get their own.
  if (HasElems.back())
    Out += Container ? "," : ", ";
  HasElems.back() = true;
  if (Container) {
    Out += '\n';
    indent();
  }
}

void JsonWriter::indent() { Out.append(2 * Stack.size(), ' '); }

JsonWriter &JsonWriter::beginObject() {
  beginValue(/*Container=*/true);
  Out += '{';
  Stack.push_back(Scope::Object);
  HasElems.push_back(false);
  HasContainers.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == Scope::Object && !KeyPending &&
         "mismatched endObject");
  bool Empty = !HasElems.back();
  Stack.pop_back();
  HasElems.pop_back();
  HasContainers.pop_back();
  if (!Empty) {
    Out += '\n';
    indent();
  }
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beginValue(/*Container=*/true);
  Out += '[';
  Stack.push_back(Scope::Array);
  HasElems.push_back(false);
  HasContainers.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == Scope::Array &&
         "mismatched endArray");
  bool Nested = HasContainers.back();
  Stack.pop_back();
  HasElems.pop_back();
  HasContainers.pop_back();
  if (Nested) {
    // Container elements were laid out on their own lines; close the
    // bracket on its own line too, like objects do.
    Out += '\n';
    indent();
  }
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back() == Scope::Object && !KeyPending &&
         "key() is only valid inside an object");
  Out += HasElems.back() ? ",\n" : "\n";
  HasElems.back() = true;
  indent();
  Out += '"';
  Out += jsonEscaped(K);
  Out += "\": ";
  KeyPending = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  beginValue(/*Container=*/false);
  Out += '"';
  Out += jsonEscaped(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beginValue(/*Container=*/false);
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beginValue(/*Container=*/false);
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beginValue(/*Container=*/false);
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  beginValue(/*Container=*/false);
  if (std::isfinite(V) && V == std::floor(V) &&
      std::abs(V) < 9.007199254740992e15) {
    Out += std::to_string(int64_t(V));
  } else {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    Out += Buf;
  }
  return *this;
}

JsonWriter &JsonWriter::value(double V, unsigned Digits) {
  beginValue(/*Container=*/false);
  Out += formatDouble(V, Digits);
  return *this;
}

JsonWriter &JsonWriter::rawValue(std::string_view Json) {
  beginValue(/*Container=*/false);
  Out += Json;
  return *this;
}

std::string JsonWriter::str() const {
  assert(Stack.empty() && "unclosed JSON container");
  return Out + "\n";
}

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<unsigned> Widths(NumCols, 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max<unsigned>(Widths[I], Row[I].size());
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  std::ostringstream OS;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        OS << "  ";
      OS << padRight(Row[I], Widths[I]);
    }
    OS << '\n';
  };
  if (!Header.empty()) {
    Emit(Header);
    unsigned Total = 0;
    for (size_t I = 0; I != NumCols; ++I)
      Total += Widths[I] + (I == 0 ? 0 : 2);
    OS << std::string(Total, '-') << '\n';
  }
  for (const auto &Row : Rows)
    Emit(Row);
  return OS.str();
}
