//===- support/Scratch.h - Per-thread reusable scratch buffers -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// threadScratch<T>(): one lazily constructed T per (thread, type), reused
/// across calls. This is the allocation-reuse hook the batched engines lean
/// on: a sweep that runs tens of thousands of batches through the
/// ThreadPool must not pay a malloc / page-fault storm of three bitmap
/// arrays per batch (56k batches at star k = 10), so each worker keeps one
/// warm scratch object and every batch assign()s into it.
///
/// Contracts:
///  * Determinism: scratch holds no state that survives into results --
///    callers must fully reinitialize (assign/clear) every field they
///    read. Reuse changes where the bytes live, never what they hold.
///  * Lifetime: the instance dies with its thread. ThreadPool workers are
///    torn down whenever the global pool is resized, so scratch memory
///    never outlives a pool generation.
///  * Reentrancy: a function holding a threadScratch<T>() reference must
///    not (transitively) call another function that takes
///    threadScratch<T>() of the same T on the same thread. Engines that
///    may nest take an explicit scratch parameter instead.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_SCRATCH_H
#define SCG_SUPPORT_SCRATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace scg {

/// The calling thread's scratch instance of \p T (default-constructed on
/// first use, reused afterwards). Function-local statics in templates are
/// ODR-merged, so every translation unit sees the same per-thread object.
template <typename T> T &threadScratch() {
  thread_local T Scratch;
  return Scratch;
}

/// Grows \p Buf's capacity to \p Elems and, when the buffer spans at
/// least one 2 MiB huge page, asks the kernel to back it with huge pages
/// (MADV_HUGEPAGE) before the caller first touches it. Multi-megabyte
/// scratch arrays accessed at random are dTLB-bound on 4 KiB pages;
/// advising huge pages is worth ~10% on the fused distance sweeps. Pure
/// hint: a refusing kernel (or non-Linux host) changes nothing
/// observable, so callers never need to check for success.
template <typename T>
void reserveHugePages(std::vector<T> &Buf, size_t Elems) {
  if (Buf.capacity() >= Elems)
    return;
  Buf.reserve(Elems);
#ifdef __linux__
  constexpr uintptr_t HugePage = uintptr_t(2) << 20;
  constexpr uintptr_t Page = 4096;
  uintptr_t Begin = (uintptr_t(Buf.data()) + Page - 1) & ~(Page - 1);
  uintptr_t End = uintptr_t(Buf.data() + Buf.capacity());
  if (End - Begin >= HugePage)
    madvise(reinterpret_cast<void *>(Begin), End - Begin, MADV_HUGEPAGE);
#endif
}

} // namespace scg

#endif // SCG_SUPPORT_SCRATCH_H
