//===- support/Format.h - Small string formatting helpers ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string-building helpers shared across the library: joining ranges,
/// padding cells for ASCII tables, and a fixed-width table printer used by
/// the benchmark harnesses to emit the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_FORMAT_H
#define SCG_SUPPORT_FORMAT_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace scg {

/// Joins the elements of \p Items with \p Sep using operator<<.
template <typename Range>
std::string join(const Range &Items, const std::string &Sep) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &Item : Items) {
    if (!First)
      OS << Sep;
    OS << Item;
    First = false;
  }
  return OS.str();
}

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(const std::string &S, unsigned Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(const std::string &S, unsigned Width);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, unsigned Digits);

/// A simple fixed-width ASCII table accumulated row by row and rendered with
/// per-column widths sized to the widest cell. Used by the bench binaries to
/// print the reproduced paper tables.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; the column count may differ from the header (the
  /// table is rendered with the maximum column count seen).
  void addRow(std::vector<std::string> Cells);

  /// Renders the table, header first, followed by a separator rule.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// SplitMix64: tiny deterministic RNG used by randomized property tests and
/// workload generators. Deterministic across platforms, unlike std::mt19937's
/// distributions.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

} // namespace scg

#endif // SCG_SUPPORT_FORMAT_H
