//===- support/Format.h - Small string formatting helpers ------*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny string-building helpers shared across the library: joining ranges,
/// padding cells for ASCII tables, a fixed-width table printer used by
/// the benchmark harnesses to emit the paper's tables, and the JSON writer
/// every bench's --json mode renders through (one escaping and number
/// formatting policy instead of a hand-rolled printf per bench).
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_FORMAT_H
#define SCG_SUPPORT_FORMAT_H

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace scg {

/// Joins the elements of \p Items with \p Sep using operator<<.
template <typename Range>
std::string join(const Range &Items, const std::string &Sep) {
  std::ostringstream OS;
  bool First = true;
  for (const auto &Item : Items) {
    if (!First)
      OS << Sep;
    OS << Item;
    First = false;
  }
  return OS.str();
}

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(const std::string &S, unsigned Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(const std::string &S, unsigned Width);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, unsigned Digits);

/// A simple fixed-width ASCII table accumulated row by row and rendered with
/// per-column widths sized to the widest cell. Used by the bench binaries to
/// print the reproduced paper tables.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; the column count may differ from the header (the
  /// table is rendered with the maximum column count seen).
  void addRow(std::vector<std::string> Cells);

  /// Renders the table, header first, followed by a separator rule.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Escapes \p S for use inside a JSON string literal: quotes, backslashes,
/// and control characters become their escape sequences (\uXXXX for the
/// controls without a short form). Everything else passes through.
std::string jsonEscaped(std::string_view S);

/// A small streaming JSON emitter with one shared formatting policy:
/// strings always escaped, integers exact, doubles either fixed-digit
/// (value(V, Digits)) or canonical round-trip %.17g (value(V)) -- the
/// divergent per-bench printf formats this replaces disagreed on all
/// three. Output is pretty-printed deterministically: every object key on
/// its own line at two-space indentation, scalar array elements inline,
/// container elements on their own lines.
///
/// Usage is push-style and order-checked only by assertions (a key must
/// be pending exactly when an object value is next):
///   JsonWriter W;
///   W.beginObject().key("ms").value(12.5, 2).key("check").value(7u);
///   W.endObject();
///   puts(W.str().c_str());
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key for the next value; only valid inside an object.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(bool V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(unsigned V) { return value(uint64_t(V)); }
  JsonWriter &value(int V) { return value(int64_t(V)); }
  /// Canonical double: integral values render without a fraction, others
  /// with round-trip precision (%.17g).
  JsonWriter &value(double V);
  /// Fixed-point double with \p Digits fractional digits.
  JsonWriter &value(double V, unsigned Digits);

  /// key(K) + value(V) in one call.
  template <typename T> JsonWriter &field(std::string_view K, T V) {
    key(K);
    return value(V);
  }
  JsonWriter &field(std::string_view K, double V, unsigned Digits) {
    key(K);
    return value(V, Digits);
  }

  /// Splices \p Json -- already-rendered JSON (e.g. MetricsRegistry::
  /// toJson()) -- as the next value, verbatim.
  JsonWriter &rawValue(std::string_view Json);

  /// Finishes and returns the document (asserts every container closed);
  /// ends with a newline.
  std::string str() const;

private:
  enum class Scope : uint8_t { Object, Array };
  void beginValue(bool Container);
  void indent();

  std::string Out;
  std::vector<Scope> Stack;
  std::vector<bool> HasElems; ///< parallel to Stack: emitted an element yet?
  /// Parallel to Stack: did this container hold a nested container? Such
  /// arrays close their bracket on its own line like objects do.
  std::vector<bool> HasContainers;
  bool KeyPending = false;
};

/// SplitMix64: tiny deterministic RNG used by randomized property tests and
/// workload generators. Deterministic across platforms, unlike std::mt19937's
/// distributions.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

} // namespace scg

#endif // SCG_SUPPORT_FORMAT_H
