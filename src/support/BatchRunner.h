//===- support/BatchRunner.h - Parallel batches of named jobs --*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper for the benches and sweeps: accumulate independent jobs,
/// run them on a ThreadPool (one chunk per job -- jobs are coarse), and get
/// the results back in submission order regardless of execution order. The
/// network-family sweeps use this to build every inventory row concurrently
/// and still print a deterministic table.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_BATCHRUNNER_H
#define SCG_SUPPORT_BATCHRUNNER_H

#include "support/ThreadPool.h"

#include <functional>
#include <vector>

namespace scg {

/// Collects jobs returning \p R and evaluates them in parallel; results come
/// back indexed exactly as the jobs were added.
template <typename R> class BatchRunner {
public:
  explicit BatchRunner(ThreadPool &Pool = ThreadPool::global())
      : Pool(Pool) {}

  /// Queues one job; returns its index in the result vector.
  size_t add(std::function<R()> Job) {
    Jobs.push_back(std::move(Job));
    return Jobs.size() - 1;
  }

  size_t size() const { return Jobs.size(); }

  /// Runs every queued job (one chunk each) and clears the queue. The first
  /// exception thrown by a job propagates.
  std::vector<R> run() {
    std::vector<R> Results(Jobs.size());
    Pool.parallelFor(
        0, Jobs.size(), [&](uint64_t I) { Results[I] = Jobs[I](); },
        /*ChunkSize=*/1);
    Jobs.clear();
    return Results;
  }

private:
  ThreadPool &Pool;
  std::vector<std::function<R()>> Jobs;
};

} // namespace scg

#endif // SCG_SUPPORT_BATCHRUNNER_H
