//===- support/ThreadPool.cpp - Deterministic chunked parallelism --------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

using namespace scg;

namespace {

/// True while the current thread is executing chunks of some job; nested
/// submissions from such a thread run inline to avoid deadlocking on the
/// pool's single job slot.
thread_local bool InParallelRegion = false;

/// Requested size for the global pool (0 = automatic).
std::atomic<unsigned> GlobalOverride{0};

struct RegionGuard {
  bool Saved = InParallelRegion;
  RegionGuard() { InParallelRegion = true; }
  ~RegionGuard() { InParallelRegion = Saved; }
};

} // namespace

unsigned scg::threadCountFromEnv() {
  const char *Text = std::getenv("SCG_THREADS");
  if (!Text || !*Text)
    return 0;
  char *End = nullptr;
  long Value = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || Value < 1)
    return 0;
  return unsigned(std::min(Value, 1024L));
}

unsigned scg::defaultThreadCount() {
  if (unsigned FromEnv = threadCountFromEnv())
    return FromEnv;
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware ? Hardware : 1;
}

void scg::setGlobalThreadCount(unsigned Count) {
  GlobalOverride.store(Count, std::memory_order_relaxed);
}

unsigned scg::effectiveThreadCount() {
  if (unsigned Override = GlobalOverride.load(std::memory_order_relaxed))
    return Override;
  return defaultThreadCount();
}

/// One parallel region. Shared-ptr-owned so a worker that observes the job
/// after the submitter returned cannot touch freed memory.
struct ThreadPool::Job {
  uint64_t Begin = 0;
  uint64_t End = 0;
  uint64_t ChunkSize = 1;
  uint64_t NumChunks = 0;
  const std::function<void(uint64_t, uint64_t)> *Chunk = nullptr;
  std::atomic<uint64_t> NextChunk{0};
  std::atomic<uint64_t> ChunksDone{0};
  std::atomic<bool> Failed{false};
  std::once_flag ErrorOnce;
  std::exception_ptr Error;
};

ThreadPool::ThreadPool(unsigned ThreadCount)
    : Count(ThreadCount ? ThreadCount : defaultThreadCount()) {
  Workers.reserve(Count - 1);
  for (unsigned I = 1; I < Count; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

uint64_t ThreadPool::defaultChunkSize(uint64_t N) {
  // Small chunks keep the load balanced across threads of unequal speed;
  // the atomic claim per chunk is negligible next to a BFS or a routing
  // simulation. Depends only on N (see the determinism contract).
  return std::clamp<uint64_t>(N / 64, 1, 1024);
}

void ThreadPool::parallelForChunks(
    uint64_t Begin, uint64_t End, uint64_t ChunkSize,
    const std::function<void(uint64_t, uint64_t)> &Chunk) {
  if (Begin >= End)
    return;
  uint64_t N = End - Begin;
  if (ChunkSize == 0)
    ChunkSize = defaultChunkSize(N);
  uint64_t NumChunks = (N + ChunkSize - 1) / ChunkSize;

  // Serial path: forced-serial pools, nested submissions, or nothing to
  // share. Exceptions propagate directly.
  if (Count == 1 || InParallelRegion || NumChunks == 1) {
    RegionGuard Guard;
    for (uint64_t C = 0; C != NumChunks; ++C) {
      uint64_t B = Begin + C * ChunkSize;
      Chunk(B, std::min(End, B + ChunkSize));
    }
    return;
  }

  auto J = std::make_shared<Job>();
  J->Begin = Begin;
  J->End = End;
  J->ChunkSize = ChunkSize;
  J->NumChunks = NumChunks;
  J->Chunk = &Chunk;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Current = J;
    ++Generation;
  }
  WorkCv.notify_all();

  runChunks(*J); // the submitting thread participates.

  {
    std::unique_lock<std::mutex> Lock(Mu);
    DoneCv.wait(Lock, [&] {
      return J->ChunksDone.load(std::memory_order_acquire) == J->NumChunks;
    });
    Current = nullptr;
  }
  if (J->Error)
    std::rethrow_exception(J->Error);
}

void ThreadPool::workerMain() {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WorkCv.wait(Lock, [&] {
      return Stop || (Current && Generation != SeenGeneration);
    });
    if (Stop)
      return;
    std::shared_ptr<Job> J = Current;
    SeenGeneration = Generation;
    Lock.unlock();
    runChunks(*J);
    Lock.lock();
  }
}

void ThreadPool::runChunks(Job &J) {
  RegionGuard Guard;
  while (true) {
    uint64_t C = J.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (C >= J.NumChunks)
      return;
    if (!J.Failed.load(std::memory_order_relaxed)) {
      uint64_t B = J.Begin + C * J.ChunkSize;
      uint64_t E = std::min(J.End, B + J.ChunkSize);
      try {
        (*J.Chunk)(B, E);
      } catch (...) {
        std::call_once(J.ErrorOnce,
                       [&] { J.Error = std::current_exception(); });
        J.Failed.store(true, std::memory_order_release);
      }
    }
    // The release increment chain makes every chunk's writes visible to the
    // submitter once it observes ChunksDone == NumChunks.
    if (J.ChunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        J.NumChunks) {
      std::lock_guard<std::mutex> Lock(Mu);
      DoneCv.notify_all();
    }
  }
}

ThreadPool &ThreadPool::global() {
  static std::mutex PoolMu;
  static std::unique_ptr<ThreadPool> Pool;
  static unsigned PoolSize = 0;
  std::lock_guard<std::mutex> Lock(PoolMu);
  unsigned Want = effectiveThreadCount();
  if (!Pool || PoolSize != Want) {
    Pool.reset(); // join the old workers before replacing them.
    Pool = std::make_unique<ThreadPool>(Want);
    PoolSize = Want;
  }
  return *Pool;
}
