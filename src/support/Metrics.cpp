//===- support/Metrics.cpp - Named counters, gauges, time series ---------===//

#include "support/Metrics.h"

#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace scg;

Metric &MetricsRegistry::counter(const std::string &Name) {
  Metric &M = Metrics[Name];
  M.Counter = true;
  return M;
}

Metric &MetricsRegistry::gauge(const std::string &Name) {
  Metric &M = Metrics[Name];
  M.Counter = false;
  return M;
}

const Metric *MetricsRegistry::find(const std::string &Name) const {
  auto It = Metrics.find(Name);
  return It == Metrics.end() ? nullptr : &It->second;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> Names;
  for (const auto &[Name, M] : Metrics)
    Names.push_back(Name);
  return Names;
}

void MetricsRegistry::sample(uint64_t Step) {
  for (auto &[Name, M] : Metrics)
    M.Series.push_back({Step, M.Value});
}

MetricSummary MetricsRegistry::summarize(const Metric &M) {
  MetricSummary S;
  if (M.series().empty())
    return S;
  S.Points = M.series().size();
  S.Min = S.Max = M.series().front().second;
  double Sum = 0.0;
  for (const auto &[Step, V] : M.series()) {
    S.Min = std::min(S.Min, V);
    S.Max = std::max(S.Max, V);
    Sum += V;
  }
  S.Mean = Sum / double(S.Points);
  S.Last = M.series().back().second;
  return S;
}

namespace {

/// JSON number rendering: counters (and any integral value) print without a
/// fractional part so exports diff cleanly. Values outside the exactly-
/// representable int64 range (a counter pushed past 2^53 loses integer
/// precision anyway; past 2^63 the cast would be undefined) render through
/// the round-trip double path instead.
std::string jsonNumber(double V, bool Integral) {
  if ((Integral || V == std::floor(V)) &&
      std::abs(V) < 9.007199254740992e15)
    return std::to_string(int64_t(V));
  return formatDouble(V, 4);
}

} // namespace

std::string MetricsRegistry::toJson(size_t MaxSeriesPoints) const {
  std::ostringstream OS;
  OS << "{";
  bool FirstMetric = true;
  for (const auto &[Name, M] : Metrics) {
    if (!FirstMetric)
      OS << ",";
    FirstMetric = false;
    bool Int = M.isCounter();
    OS << "\n  \"" << jsonEscaped(Name) << "\": {\"kind\": \""
       << (M.isCounter() ? "counter" : "gauge")
       << "\", \"value\": " << jsonNumber(M.value(), Int);
    MetricSummary S = summarize(M);
    OS << ", \"summary\": {\"points\": " << S.Points
       << ", \"min\": " << jsonNumber(S.Min, Int)
       << ", \"max\": " << jsonNumber(S.Max, Int)
       << ", \"mean\": " << jsonNumber(S.Mean, false)
       << ", \"last\": " << jsonNumber(S.Last, Int) << "}";
    const auto &Series = M.series();
    size_t Stride = 1;
    if (MaxSeriesPoints && Series.size() > MaxSeriesPoints)
      Stride = (Series.size() + MaxSeriesPoints - 1) / MaxSeriesPoints;
    OS << ", \"series\": [";
    bool FirstPoint = true;
    auto Emit = [&](size_t I) {
      if (!FirstPoint)
        OS << ", ";
      FirstPoint = false;
      OS << "[" << Series[I].first << ", "
         << jsonNumber(Series[I].second, Int) << "]";
    };
    for (size_t I = 0; I < Series.size(); I += Stride)
      Emit(I);
    // The final point always survives downsampling.
    if (Stride > 1 && !Series.empty() && (Series.size() - 1) % Stride != 0)
      Emit(Series.size() - 1);
    OS << "]}";
  }
  OS << "\n}";
  return OS.str();
}

void Histogram::add(uint64_t Value) {
  if (Value >= Counts.size())
    Counts.resize(Value + 1, 0);
  ++Counts[Value];
  ++Total;
}

std::string Histogram::render(unsigned Width) const {
  if (Total == 0)
    return "(empty)\n";
  uint64_t Peak = *std::max_element(Counts.begin(), Counts.end());
  unsigned LabelWidth =
      unsigned(std::to_string(Counts.size() - 1).size());
  std::ostringstream OS;
  for (uint64_t V = 0; V != Counts.size(); ++V) {
    if (Counts[V] == 0)
      continue;
    uint64_t Bar = std::max<uint64_t>(1, Counts[V] * Width / Peak);
    OS << padLeft(std::to_string(V), LabelWidth) << " | "
       << std::string(size_t(Bar), '#') << "  " << Counts[V] << "\n";
  }
  return OS.str();
}
