//===- support/ThreadPool.h - Deterministic chunked parallelism -*- C++ -*-===//
//
// Part of the super-cayley-graphs project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a chunked, work-stealing-free
/// parallelFor / parallelMapReduce API designed for determinism: given the
/// same input range and chunk size, parallelMapReduce produces byte-identical
/// results at every thread count, because per-chunk partial results are
/// folded in chunk-index order after the parallel region, and the default
/// chunk size depends only on the range length (never on the thread count).
/// The graph sweeps (allPairsStats, fault sweeps, batch permutation routing)
/// rely on this contract, and tests/ParallelDifferentialTest.cpp pins it.
///
/// Thread-count resolution for the process-global pool, in precedence order:
/// setGlobalThreadCount() override, the SCG_THREADS environment variable,
/// std::thread::hardware_concurrency(). A count of 1 is a forced serial
/// mode: no worker threads are spawned and every region runs inline on the
/// calling thread.
///
/// Nested parallel regions (submissions from inside a worker) run inline
/// serially on the submitting thread, so nesting can never deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef SCG_SUPPORT_THREADPOOL_H
#define SCG_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace scg {

/// Thread count requested by the SCG_THREADS environment variable, or 0 if
/// unset/unparsable. Values are clamped to [1, 1024].
unsigned threadCountFromEnv();

/// Automatic pool size: SCG_THREADS if set, else hardware concurrency
/// (at least 1).
unsigned defaultThreadCount();

/// Overrides the size of the process-global pool; 0 restores automatic
/// sizing. Takes effect on the next ThreadPool::global() call; must not be
/// called while parallel work is in flight.
void setGlobalThreadCount(unsigned Count);

/// The size ThreadPool::global() resolves to right now.
unsigned effectiveThreadCount();

/// Fixed-size pool executing chunked parallel loops. The calling thread
/// always participates, so a pool of size T uses T-1 workers.
class ThreadPool {
public:
  /// Creates a pool of \p ThreadCount threads (0 = defaultThreadCount()).
  /// Size 1 spawns no workers and runs everything inline.
  explicit ThreadPool(unsigned ThreadCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return Count; }

  /// Chunk size used for a range of length \p N when the caller passes 0.
  /// A function of N only -- never of the thread count -- so that chunk
  /// boundaries, and therefore reduction grouping, are identical at every
  /// thread count.
  static uint64_t defaultChunkSize(uint64_t N);

  /// Runs \p Chunk(B, E) over consecutive subranges [B, E) covering
  /// [\p Begin, \p End) in chunks of \p ChunkSize (0 = default). Chunks are
  /// claimed by an atomic cursor in index order; the caller participates.
  /// The first exception thrown by any chunk is rethrown here (remaining
  /// unstarted chunks are skipped once a chunk has failed).
  void parallelForChunks(uint64_t Begin, uint64_t End, uint64_t ChunkSize,
                         const std::function<void(uint64_t, uint64_t)> &Chunk);

  /// Runs \p Body(I) for every I in [\p Begin, \p End), chunked as above.
  void parallelFor(uint64_t Begin, uint64_t End,
                   const std::function<void(uint64_t)> &Body,
                   uint64_t ChunkSize = 0) {
    parallelForChunks(Begin, End, ChunkSize,
                      [&Body](uint64_t B, uint64_t E) {
                        for (uint64_t I = B; I != E; ++I)
                          Body(I);
                      });
  }

  /// Maps [\p Begin, \p End) through \p Map and folds with \p Reduce.
  /// \p Identity must be the identity of \p Reduce. Each chunk folds its
  /// indices in ascending order into a per-chunk partial; partials are then
  /// folded in chunk-index order on the calling thread, so the result is
  /// byte-identical to the serial left fold whenever \p ChunkSize (or the
  /// default) is held fixed -- even for non-associative reductions such as
  /// floating-point sums.
  template <typename R, typename MapFn, typename ReduceFn>
  R parallelMapReduce(uint64_t Begin, uint64_t End, R Identity, MapFn Map,
                      ReduceFn Reduce, uint64_t ChunkSize = 0) {
    if (Begin >= End)
      return Identity;
    uint64_t N = End - Begin;
    if (ChunkSize == 0)
      ChunkSize = defaultChunkSize(N);
    uint64_t NumChunks = (N + ChunkSize - 1) / ChunkSize;
    std::vector<R> Partials(NumChunks, Identity);
    parallelForChunks(Begin, End, ChunkSize,
                      [&](uint64_t B, uint64_t E) {
                        uint64_t C = (B - Begin) / ChunkSize;
                        R Acc = std::move(Partials[C]);
                        for (uint64_t I = B; I != E; ++I)
                          Acc = Reduce(std::move(Acc), Map(I));
                        Partials[C] = std::move(Acc);
                      });
    R Total = std::move(Identity);
    for (R &Partial : Partials)
      Total = Reduce(std::move(Total), std::move(Partial));
    return Total;
  }

  /// The process-global pool, sized by effectiveThreadCount() and rebuilt
  /// when that count changes.
  static ThreadPool &global();

private:
  struct Job;

  void workerMain();
  void runChunks(Job &J);

  unsigned Count;
  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::shared_ptr<Job> Current; ///< job being drained, null when idle.
  uint64_t Generation = 0;      ///< bumped per job so workers join it once.
  bool Stop = false;
};

} // namespace scg

#endif // SCG_SUPPORT_THREADPOOL_H
